"""Score engines: interchangeable evaluators of Eq. 1–4 against a live schedule.

Greedy solvers interrogate the objective thousands of times; this module
provides that oracle behind one interface, :class:`ScoreEngine`, with three
implementations:

* :class:`ReferenceEngine` — delegates to the loop-based reference functions
  in :mod:`repro.core.attendance` / :mod:`~repro.core.objective` /
  :mod:`~repro.core.scoring`.  O(|U| * |E_t|) per query.  The semantic
  oracle: slow, obviously-correct, used to cross-check everything else.

* :class:`VectorizedEngine` — maintains, per interval ``t``, the scheduled
  interest mass ``M_t[u] = sum_{e in E_t(S)} mu[u, e]`` as a numpy vector.
  With the competing mass ``K_t`` precomputed on the instance, Eq. 4
  collapses to::

      score(r, t) = sum_u sigma[u, t] * ( (M + m_r) / (K + M + m_r)
                                          -  M      / (K + M) )

  evaluated for *all* candidate events of one interval in a single
  broadcast (chunked over users to bound peak memory).  This is the form
  derived in DESIGN.md §5; equality with the reference engine to 1e-9 is a
  property test.

* :class:`SparseEngine` — the same algebra restricted to nonzero support.

Sparse design notes
-------------------

The per-user summand of Eq. 4 above is ``f(M + m_r) - f(M)`` with
``f(M) = M / (K + M)``; wherever ``mu[u, r] = 0`` the two terms coincide
and the user contributes *exactly* zero.  Jaccard-mined Meetup interest is
overwhelmingly sparse (a user shares tags with a tiny fraction of the
event pool), so almost every user drops out of almost every query.  The
sparse engine exploits this:

* ``mu`` stays in CSC storage (``InterestMatrix(backend="sparse")``); a
  score query gathers only the nonzero ``(rows, values)`` of event ``r``'s
  column — O(nnz(r)) work and memory, independent of ``|U|``;
* the scheduled mass ``M_t`` and competing mass ``K_t`` are kept as sorted
  sparse vectors, gathered at a column's rows by binary search.  ``M_t``
  additionally counts nonzero-mu contributors per row so that removals
  drop entries whose true mass returned to zero (subtraction residue of
  ~1e-16 would otherwise read as ``M / (K + M) = 1`` wherever ``K = 0``);
* ``K_t`` is accumulated lazily per interval from the competing columns
  (``InterestMatrix.competing_mass_entries``), so the dense
  ``(|T|, |U|)`` ``competing_mass`` table on the instance is never
  touched;
* no dense ``(users, events)`` or even ``(users,)`` temporary is ever
  materialized — :meth:`SparseEngine.scores_for_interval` is a per-column
  loop over gathers, whose total footprint is the number of stored
  entries of the queried columns.

All three engines agree to 1e-9 on every query; the cross-engine property
suite (``tests/properties/test_engine_equivalence.py``) draws both interest
backends and random assign/unassign sequences to enforce it.

Both stateful engines mirror the schedule they evaluate: call
:meth:`assign` / :meth:`unassign` as the solver commits moves.  0/0 is
defined as 0 throughout, matching the reference semantics.
"""

from __future__ import annotations

import sys
import warnings
from abc import ABC, abstractmethod
from collections.abc import Sequence
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core import attendance, objective, scoring
from repro.core.errors import DuplicateEventError, UnknownEntityError
from repro.core.instance import SESInstance
from repro.core.interest import masked_ratio, merge_entries
from repro.core.live import (
    CompetingAdded,
    EventAdded,
    EventInterestReplaced,
    EventRemoved,
    LiveDelta,
    _DenseColumns,
)
from repro.core.schedule import Assignment, Schedule

__all__ = [
    "ScoreEngine",
    "ReferenceEngine",
    "VectorizedEngine",
    "SparseEngine",
    "EngineSpec",
    "ENGINE_KINDS",
    "INTEREST_BACKENDS",
    "resolve_engine_spec",
    "make_engine",
]


class ScoreEngine(ABC):
    """Stateful evaluator of utilities and marginal scores for one instance."""

    def __init__(self, instance: SESInstance) -> None:
        self._instance = instance
        self._schedule = Schedule(instance)

    # ------------------------------------------------------------------
    @property
    def instance(self) -> SESInstance:
        return self._instance

    @property
    def schedule(self) -> Schedule:
        """The schedule currently mirrored by the engine (do not mutate)."""
        return self._schedule

    def reset(self) -> None:
        """Forget all assignments; equivalent to rebuilding the engine."""
        self._schedule = Schedule(self._instance)
        self._reset_state()

    def assign(self, event: int, interval: int) -> None:
        """Commit ``alpha_event^interval``; scores now reflect the new state."""
        self._schedule.add(Assignment(event=event, interval=interval))
        self._apply(event, interval, sign=+1)

    def unassign(self, event: int) -> None:
        """Withdraw a committed assignment (used by local search / undo)."""
        removed = self._schedule.remove(event)
        self._apply(removed.event, removed.interval, sign=-1)

    # ------------------------------------------------------------------
    # cloning (the serving layer's replica fork)
    # ------------------------------------------------------------------
    def clone(self) -> "ScoreEngine":
        """An independent engine over the same instance with equal state.

        The clone answers every query bit-identically to the original at
        the moment of cloning, and the two diverge freely afterwards:
        mutable accumulator state (per-interval mass vectors, contributor
        counts, the schedule mirror) is copied, while immutable inputs —
        the instance, interest storage, activity matrix — are shared by
        reference.  Cost is O(state), never O(instance): no interest
        matrix is re-copied and no mass is re-accumulated.

        Cloning an engine built over a
        :class:`~repro.core.live.LiveInstance` shares the *live* storage;
        that is only safe while structural mutations are excluded for the
        clone's lifetime (the serving pool clones template engines built
        over frozen snapshots instead).
        """
        other = self._clone_shell()
        other._schedule = self._schedule.copy()
        return other

    def _clone_shell(self) -> "ScoreEngine":
        """Engine-specific clone of everything except the schedule mirror.

        The default covers engines whose only state is the schedule
        (reference); stateful engines override to copy accumulators and
        share immutable inputs instead of re-running construction.
        """
        return type(self)(self._instance)

    # ------------------------------------------------------------------
    # accumulated-state snapshots (checkpoint/recovery)
    # ------------------------------------------------------------------
    def export_mass_state(self) -> list[Any] | None:
        """JSON-ready snapshot of order-sensitive accumulated float state.

        Per-interval scheduled mass is accumulated in assignment order,
        so rebuilding it from the schedule alone (sorted ``assign``
        calls) lands within an ulp of — but not bit-identical to — the
        live values.  Engines that keep such accumulators return them
        here (insertion order included: ``total_utility`` sums intervals
        in that order); engines that derive every answer fresh from the
        schedule return ``None``.
        """
        return None

    def restore_mass_state(self, state: list[Any]) -> None:
        """Adopt a snapshot produced by :meth:`export_mass_state`."""
        raise TypeError(
            f"{type(self).__name__} keeps no accumulated mass state"
        )

    # ------------------------------------------------------------------
    # live-instance deltas
    # ------------------------------------------------------------------
    def apply_delta(self, delta: LiveDelta) -> None:
        """Absorb one :class:`~repro.core.live.LiveDelta` in O(delta).

        Only meaningful for an engine built over a
        :class:`~repro.core.live.LiveInstance`: the live instance mutates
        first, then the engine patches whatever state it caches (dense
        ``mu`` views, per-interval mass vectors, competing-entry caches)
        instead of being rebuilt.  Queries answered before and after are
        consistent with the live state at all times.
        """
        if isinstance(delta, EventAdded):
            self._on_event_added(delta)
        elif isinstance(delta, EventRemoved):
            if self._schedule.contains_event(delta.event):
                # a caller-ordering bug, not a domain error: removal must
                # be preceded by unassign so the mass update still sees
                # the event's interest column
                raise ValueError(
                    f"cannot remove event {delta.event} while it is "
                    f"scheduled; unassign it first"
                )
            self._renumber_after_removal(delta.event)
            self._on_event_removed(delta)
        elif isinstance(delta, EventInterestReplaced):
            self._on_event_interest_replaced(delta)
        elif isinstance(delta, CompetingAdded):
            self._on_competing_added(delta)
        else:
            raise TypeError(f"unknown live delta {delta!r}")

    def _renumber_after_removal(self, removed: int) -> None:
        """Shift the schedule mirror's event indices past a removal."""
        mapping = self._schedule.as_mapping()
        self._schedule = Schedule(self._instance)
        for event, interval in sorted(mapping.items()):
            self._schedule.add(
                Assignment(
                    event=event if event < removed else event - 1,
                    interval=interval,
                )
            )

    def score_geometry(self) -> object:
        """Fingerprint of the engine's floating-point query geometry.

        Two queries of the same cell agree bit for bit only while this
        value is unchanged (e.g. the vectorized engine's user-chunk
        length, which moves when the live event count crosses a power of
        two).  Caches of score values — :class:`ScorePlane` — compare it
        across structural deltas and drop cached cells on a change.
        ``None`` (the default, and the sparse/reference engines' answer)
        means queries are geometry-free: per-cell results never depend
        on batch shape.
        """
        return None

    # per-engine cache hooks; the default engine caches nothing
    def _on_event_added(self, delta: EventAdded) -> None:
        pass

    def _on_event_removed(self, delta: EventRemoved) -> None:
        pass

    def _on_event_interest_replaced(self, delta: EventInterestReplaced) -> None:
        pass

    def _on_competing_added(self, delta: CompetingAdded) -> None:
        pass

    # ------------------------------------------------------------------
    # queries every engine must answer
    # ------------------------------------------------------------------
    @abstractmethod
    def score(self, event: int, interval: int) -> float:
        """Eq. 4: utility gain of adding ``event`` at ``interval`` now."""

    @abstractmethod
    def scores_for_interval(
        self, interval: int, events: Sequence[int]
    ) -> np.ndarray:
        """Vector of Eq. 4 scores for many candidate events at one interval."""

    def scores_for_rows(
        self, intervals: Sequence[int], events: Sequence[int]
    ) -> np.ndarray:
        """Matrix of Eq. 4 scores: ``(len(intervals), len(events))``.

        The batched form of :meth:`scores_for_interval` that a
        :class:`~repro.core.scoreplane.ScorePlane` flush asks for: all
        dirty rows in one call.  The default evaluates row by row in the
        given order — bit-identical to the per-row path — while engines
        with cross-row parallelism (the sharded engine) override it to
        fan the whole batch out once.
        """
        event_indices = list(events)
        out = np.empty((len(intervals), len(event_indices)))
        for position, interval in enumerate(intervals):
            out[position] = self.scores_for_interval(interval, event_indices)
        return out

    def removal_loss(self, event: int) -> float:
        """The Eq. 4 score ``event`` would get back if it were withdrawn.

        Equals ``unassign(event); score(event, home); assign(event, home)``
        bit for bit, but without mutating any engine state — the query the
        displacement pass asks once per scheduled victim.  This is
        exactly the what-if score of the event with *itself* excluded, so
        every engine answers through its ``_score_excluding``.
        """
        interval = self._schedule.interval_of(event)
        if interval is None:
            raise UnknownEntityError(
                f"event {event} is not scheduled; removal_loss is defined "
                f"only for scheduled events"
            )
        return self._score_excluding(event, interval, event)

    def removal_losses(self, events: Sequence[int]) -> np.ndarray:
        """Vector of :meth:`removal_loss` over many scheduled events.

        The displacement pass asks this once per change op; engines with
        batchable state override it to amortize their gathers.
        """
        return np.array([self.removal_loss(event) for event in events])

    def score_excluding(self, event: int, interval: int, excluding: int) -> float:
        """Eq. 4 score of ``event`` at ``interval`` with one sibling removed.

        ``excluding`` must be scheduled at ``interval``; the result equals
        scoring ``event`` right after withdrawing ``excluding`` (again bit
        for bit, without engine mutation).
        """
        if self._schedule.contains_event(event):
            raise DuplicateEventError(
                f"event {event} is already scheduled; Eq. 4 requires r not in E(S)"
            )
        if self._schedule.interval_of(excluding) != interval:
            raise UnknownEntityError(
                f"event {excluding} is not scheduled at interval {interval}; "
                f"cannot exclude it"
            )
        return self._score_excluding(event, interval, excluding)

    def scores_excluding_each(
        self, event: int, interval: int, excluding: Sequence[int]
    ) -> np.ndarray:
        """Vector of :meth:`score_excluding` over many withdrawn siblings."""
        return np.array(
            [
                self.score_excluding(event, interval, excluded)
                for excluded in excluding
            ]
        )

    def scores_for_event(
        self, event: int, intervals: Sequence[int]
    ) -> np.ndarray:
        """Vector of Eq. 4 scores for one candidate event at many intervals."""
        return np.array(
            [self.score(event, interval) for interval in intervals]
        )

    @abstractmethod
    def _score_excluding(
        self, event: int, interval: int, excluding: int
    ) -> float:
        """Eq. 4 score of ``event`` at ``interval`` without ``excluding``.

        ``excluding`` may equal ``event`` (the :meth:`removal_loss`
        case); implementations must not assume the two differ.
        """

    @abstractmethod
    def omega(self, event: int) -> float:
        """Eq. 2: expected attendance of a *scheduled* event."""

    @abstractmethod
    def interval_utility(self, interval: int) -> float:
        """Summed expected attendance of the events at ``interval``."""

    @abstractmethod
    def total_utility(self) -> float:
        """Eq. 3 for the mirrored schedule."""

    # ------------------------------------------------------------------
    # state hooks
    # ------------------------------------------------------------------
    @abstractmethod
    def _reset_state(self) -> None: ...

    @abstractmethod
    def _apply(self, event: int, interval: int, sign: int) -> None: ...


class ReferenceEngine(ScoreEngine):
    """Paper-faithful engine: every query recomputes from the equations."""

    def score(self, event: int, interval: int) -> float:
        return scoring.assignment_score(
            self._instance, self._schedule, Assignment(event=event, interval=interval)
        )

    def scores_for_interval(self, interval: int, events: Sequence[int]) -> np.ndarray:
        return np.array([self.score(event, interval) for event in events])

    def _score_excluding(self, event: int, interval: int, excluding: int) -> float:
        # the reference engine has no mass state: withdrawing from the
        # schedule mirror and scoring IS the definition (this also covers
        # excluding == event, i.e. removal_loss)
        self._schedule.remove(excluding)
        try:
            return self.score(event, interval)
        finally:
            self._schedule.add(
                Assignment(event=excluding, interval=interval)
            )

    def omega(self, event: int) -> float:
        return attendance.expected_attendance(self._instance, self._schedule, event)

    def interval_utility(self, interval: int) -> float:
        return sum(
            attendance.expected_attendance(self._instance, self._schedule, event)
            for event in self._schedule.events_at(interval)
        )

    def total_utility(self) -> float:
        return objective.total_utility(self._instance, self._schedule)

    def _reset_state(self) -> None:
        pass  # the schedule mirror is the only state

    def _apply(self, event: int, interval: int, sign: int) -> None:
        pass  # queries recompute from the schedule every time


class VectorizedEngine(ScoreEngine):
    """Numpy engine maintaining per-interval scheduled-mass vectors.

    Parameters
    ----------
    instance:
        The problem instance.
    chunk_elements:
        Upper bound on the number of matrix elements materialized by one
        broadcast in :meth:`scores_for_interval`; larger inputs are chunked
        along the user axis.  The default (4M doubles = 32 MB per
        temporary) keeps the working set cache-friendly even at full
        Meetup scale.

    Chunk boundaries are a function of the *instance's* event count, not
    of how many events one query happens to batch, so a cell's value is
    reproducible across batch compositions: scoring one event at one
    interval, a subset row refresh and a full row fill all walk the same
    user chunks and therefore accumulate in the same order.  The
    :class:`~repro.core.scoreplane.ScorePlane` warm-start contract (a
    cached cell equals what a fresh fill would compute) leans on this.
    """

    def __init__(
        self, instance: SESInstance, chunk_elements: int = 4_000_000
    ) -> None:
        if chunk_elements <= 0:
            raise ValueError(f"chunk_elements must be positive, got {chunk_elements}")
        self._chunk_elements = int(chunk_elements)
        self._mu = instance.interest.candidate
        self._mu_store: _DenseColumns | None = None
        self._sigma = instance.activity.matrix
        self._scheduled_mass: dict[int, np.ndarray] = {}
        self._contributors: dict[int, np.ndarray] = {}
        super().__init__(instance)

    # ------------------------------------------------------------------
    def _reset_state(self) -> None:
        self._scheduled_mass.clear()
        self._contributors.clear()

    def _apply(self, event: int, interval: int, sign: int) -> None:
        if sign < 0 and not self._schedule.events_at(interval):
            del self._scheduled_mass[interval]
            del self._contributors[interval]
            return
        mass = self._scheduled_mass.get(interval)
        if mass is None:
            mass = np.zeros(self._instance.n_users)
            self._scheduled_mass[interval] = mass
            self._contributors[interval] = np.zeros(
                self._instance.n_users, dtype=np.int64
            )
        column = self._mu[:, event]
        contributors = self._contributors[interval]
        if sign > 0:
            mass += column
            contributors += column != 0.0
            return
        # Plain subtraction leaves ~1e-16 residue on users whose remaining
        # mass should be exactly zero, and where the competing mass is also
        # zero the ratio M / (K + M) then evaluates to 1 instead of 0 — a
        # whole sigma[u, t] of phantom utility per affected user.  Counting
        # nonzero-mu contributors per user lets us hard-zero exactly those
        # entries in O(|U|), without rebuilding from the sibling columns.
        mass -= column
        contributors -= column != 0.0
        mass[contributors == 0] = 0.0

    def _mass(self, interval: int) -> np.ndarray:
        mass = self._scheduled_mass.get(interval)
        if mass is None:
            return np.zeros(self._instance.n_users)
        return mass

    def _clone_shell(self) -> "VectorizedEngine":
        # bypass __init__: re-reading interest.candidate would materialize
        # a fresh dense matrix over sparse-backed storage (O(|U| * |E|));
        # the clone shares the original's mu view / sigma and copies only
        # the per-interval accumulators (and the engine-owned dense
        # buffer, when one was densified by live deltas)
        other = object.__new__(VectorizedEngine)
        other._chunk_elements = self._chunk_elements
        if self._mu_store is not None:
            other._mu_store = self._mu_store.copy()
            other._mu = other._mu_store.view()
        else:
            other._mu_store = None
            other._mu = self._mu
        other._sigma = self._sigma
        other._scheduled_mass = {
            interval: mass.copy()
            for interval, mass in self._scheduled_mass.items()
        }
        other._contributors = {
            interval: counts.copy()
            for interval, counts in self._contributors.items()
        }
        ScoreEngine.__init__(other, self._instance)
        return other

    # -- live-instance deltas -------------------------------------------
    def _delta_column(self, rows: np.ndarray, values: np.ndarray) -> np.ndarray:
        column = np.zeros(self._instance.n_users)
        column[rows] = values
        return column

    def _own_mu(self) -> _DenseColumns:
        """The engine-owned dense ``mu`` buffer for non-dense interest.

        Over a dense-backed live instance ``interest.candidate`` is a
        zero-copy view, so no engine copy is needed — but a sparse-backed
        live instance would have to materialize the full dense matrix on
        every access.  Instead the engine densifies once on the first
        structural delta and patches its own growable column buffer in
        O(delta) afterwards.
        """
        if self._mu_store is None:
            self._mu_store = _DenseColumns(np.asarray(self._mu))
        return self._mu_store

    def _mu_is_live_view(self) -> bool:
        return getattr(self._instance.interest, "backend", "dense") == "dense"

    def _on_event_added(self, delta: EventAdded) -> None:
        if self._mu_is_live_view():
            self._mu = self._instance.interest.candidate
        else:
            store = self._own_mu()
            store.append(self._delta_column(delta.rows, delta.values))
            self._mu = store.view()

    def _on_event_removed(self, delta: EventRemoved) -> None:
        if self._mu_is_live_view():
            self._mu = self._instance.interest.candidate
        else:
            store = self._own_mu()
            store.remove(delta.event)
            self._mu = store.view()

    def _on_event_interest_replaced(self, delta: EventInterestReplaced) -> None:
        if self._mu_is_live_view():
            self._mu = self._instance.interest.candidate
        else:
            store = self._own_mu()
            store.put(delta.event, self._delta_column(delta.rows, delta.values))
            self._mu = store.view()
        interval = self._schedule.interval_of(delta.event)
        if interval is None:
            return
        # the scheduled-mass vector still carries the old column: swap the
        # contributions in O(nnz(old) + nnz(new)), hard-zeroing entries
        # whose nonzero-contributor count returned to zero (see _apply)
        mass = self._scheduled_mass[interval]
        contributors = self._contributors[interval]
        mass[delta.old_rows] -= delta.old_values
        contributors[delta.old_rows] -= 1
        mass[delta.rows] += delta.values
        contributors[delta.rows] += 1
        touched = np.union1d(delta.old_rows, delta.rows)
        dead = touched[contributors[touched] == 0]
        mass[dead] = 0.0

    def _on_competing_added(self, delta: CompetingAdded) -> None:
        pass  # K_t is read through the live instance at query time

    # ------------------------------------------------------------------
    def score(self, event: int, interval: int) -> float:
        if self._schedule.contains_event(event):
            raise DuplicateEventError(
                f"event {event} is already scheduled; Eq. 4 requires r not in E(S)"
            )
        return _eq4_gain(
            self._mass(interval),
            self._instance.competing_mass[interval],
            self._mu[:, event],
            self._sigma[:, interval],
        )

    def scores_for_interval(self, interval: int, events: Sequence[int]) -> np.ndarray:
        event_indices = np.asarray(list(events), dtype=np.intp)
        if event_indices.size == 0:
            return np.zeros(0)
        for event in event_indices:
            if self._schedule.contains_event(int(event)):
                raise DuplicateEventError(
                    f"event {int(event)} is already scheduled; "
                    f"Eq. 4 requires r not in E(S)"
                )

        n_users = self._instance.n_users
        scheduled = self._mass(interval)
        competing = self._instance.competing_mass[interval]
        sigma = self._sigma[:, interval]
        old_denominator = competing + scheduled
        base = float(sigma @ masked_ratio(scheduled, old_denominator))

        # Chunked, allocation-lean evaluation.  Per chunk only two
        # (users x events) temporaries are materialized: the mu column
        # gather (reused in place as the numerator, then as the ratio)
        # and the denominator.  Where the denominator is 0 the numerator
        # is necessarily 0 as well (all masses are non-negative), so the
        # masked divide leaves the correct 0 behind without pre-zeroing.
        scores = np.zeros(event_indices.size)
        chunk_users = self._chunk_users()
        for start in range(0, n_users, chunk_users):
            stop = min(start + chunk_users, n_users)
            # advanced indexing already yields a fresh array we may mutate
            work = self._mu[start:stop, event_indices]  # mu columns
            denominator = work + old_denominator[start:stop, None]
            np.add(work, scheduled[start:stop, None], out=work)  # numerator
            np.divide(work, denominator, out=work, where=denominator > 0.0)
            scores += sigma[start:stop] @ work
        return scores - base

    def _chunk_users(self) -> int:
        """User-axis chunk length, independent of any query's batch size.

        Sized against the instance's full event count so the worst-case
        (all-events) row fill stays within ``chunk_elements``; smaller
        batches reuse the same boundaries, which is what makes cell
        values batch-composition-independent (see the class docstring).
        The event count is rounded up to the next power of two so the
        boundaries stay stable as live arrivals/cancellations drift
        ``n_events`` — they only move when the count crosses a power of
        two, which :meth:`score_geometry` exposes so cached score state
        (a :class:`~repro.core.scoreplane.ScorePlane`) can detect the
        change and refill instead of serving cells computed under the
        old accumulation grouping.
        """
        bucket = 1 << max(0, self._instance.n_events - 1).bit_length()
        return max(1, self._chunk_elements // max(1, bucket))

    def score_geometry(self) -> object:
        """See :meth:`ScoreEngine.score_geometry`: the chunk length."""
        return self._chunk_users()

    def scores_for_event(
        self, event: int, intervals: Sequence[int]
    ) -> np.ndarray:
        """Batched one-column scoring, walking the row-fill user chunks.

        Each cell is computed with exactly the elementwise operations —
        and the same user-chunk accumulation order — that
        :meth:`scores_for_interval` applies to that event's column, so a
        :class:`~repro.core.scoreplane.ScorePlane` column restored here
        equals the cell a row refresh would have produced.
        """
        if self._schedule.contains_event(event):
            raise DuplicateEventError(
                f"event {event} is already scheduled; Eq. 4 requires r not in E(S)"
            )
        interval_indices = [int(interval) for interval in intervals]
        scores = np.zeros(len(interval_indices))
        n_users = self._instance.n_users
        chunk_users = self._chunk_users()
        column = self._mu[:, event]
        for position, interval in enumerate(interval_indices):
            scheduled = self._mass(interval)
            old_denominator = (
                self._instance.competing_mass[interval] + scheduled
            )
            sigma = self._sigma[:, interval]
            base = float(sigma @ masked_ratio(scheduled, old_denominator))
            score = 0.0
            for start in range(0, n_users, chunk_users):
                stop = min(start + chunk_users, n_users)
                work = column[start:stop].copy()
                denominator = work + old_denominator[start:stop]
                np.add(work, scheduled[start:stop], out=work)
                np.divide(work, denominator, out=work, where=denominator > 0.0)
                score += float(sigma[start:stop] @ work)
            scores[position] = score - base
        return scores

    def _mass_without(self, interval: int, excluding: int) -> np.ndarray:
        """``M_t`` with one scheduled column withdrawn (pure function).

        Reproduces :meth:`_apply`'s subtraction exactly — including the
        contributor-count hard-zeroing — without touching engine state.
        """
        column = self._mu[:, excluding]
        mass = self._mass(interval) - column
        contributors = self._contributors.get(interval)
        if contributors is not None:
            mass[(contributors - (column != 0.0)) == 0] = 0.0
        return mass

    def _score_excluding(self, event: int, interval: int, excluding: int) -> float:
        return _eq4_gain(
            self._mass_without(interval, excluding),
            self._instance.competing_mass[interval],
            self._mu[:, event],
            self._sigma[:, interval],
        )

    def omega(self, event: int) -> float:
        interval = self._schedule.interval_of(event)
        if interval is None:
            raise UnknownEntityError(
                f"event {event} is not scheduled; omega is defined only for "
                f"scheduled events"
            )
        denominator = self._instance.competing_mass[interval] + self._mass(interval)
        ratio = masked_ratio(self._mu[:, event], denominator)
        return float(self._sigma[:, interval] @ ratio)

    def interval_utility(self, interval: int) -> float:
        scheduled = self._mass(interval)
        denominator = self._instance.competing_mass[interval] + scheduled
        ratio = masked_ratio(scheduled, denominator)
        return float(self._sigma[:, interval] @ ratio)

    def total_utility(self) -> float:
        return sum(
            self.interval_utility(interval) for interval in self._scheduled_mass
        )

    def export_mass_state(self) -> list[Any]:
        # a list of triples, not a dict: checkpoint files sort object
        # keys, and interval insertion order is part of the state
        return [
            [int(interval), mass.tolist(), self._contributors[interval].tolist()]
            for interval, mass in self._scheduled_mass.items()
        ]

    def restore_mass_state(self, state: list[Any]) -> None:
        self._scheduled_mass = {}
        self._contributors = {}
        for interval, mass, contributors in state:
            self._scheduled_mass[int(interval)] = np.asarray(mass, dtype=float)
            self._contributors[int(interval)] = np.asarray(
                contributors, dtype=np.int64
            )


class _SparseMass:
    """A sparse non-negative vector: sorted row indices + parallel values.

    The scheduled interest mass ``M_t`` of one interval.  Alongside each
    value we count how many scheduled columns contribute a nonzero entry
    to that row; when a removal drops a row's count to zero the entry is
    discarded outright, so subtraction residue (~1e-16 where the true
    remaining mass is exactly zero) can never leak phantom utility into
    the ``M / (K + M)`` ratio.
    """

    __slots__ = ("rows", "values", "counts")

    def __init__(self) -> None:
        self.rows = np.zeros(0, dtype=np.intp)
        self.values = np.zeros(0)
        self.counts = np.zeros(0, dtype=np.int64)

    def update(self, rows: np.ndarray, values: np.ndarray, sign: int) -> None:
        """Merge-add (``sign=+1``) or merge-subtract (``-1``) one column.

        Both directions are sort-free merges against the already-sorted
        state: a subtraction only ever touches rows a prior addition
        created (columns are removed at most once per addition), so it is
        a pure in-place update plus a compaction of rows whose
        contributor count returned to zero; an addition updates hit rows
        in place and splices the genuinely new ones in with one
        ``searchsorted``.  O((nnz(state) + nnz(column))) worst case, with
        no O(n log n) re-sort.
        """
        if rows.size == 0:
            return
        if sign < 0:
            positions = np.searchsorted(self.rows, rows)
            self.values[positions] -= values
            self.counts[positions] -= 1
            if (self.counts[positions] == 0).any():
                keep = self.counts > 0
                self.rows = self.rows[keep]
                self.values = self.values[keep]
                self.counts = self.counts[keep]
            return
        positions = np.searchsorted(self.rows, rows)
        clipped = np.minimum(positions, max(0, self.rows.size - 1))
        hits = (
            (positions < self.rows.size) & (self.rows[clipped] == rows)
            if self.rows.size
            else np.zeros(rows.size, dtype=bool)
        )
        self.values[positions[hits]] += values[hits]
        self.counts[positions[hits]] += 1
        if hits.all():
            return
        fresh = ~hits
        insert_at = positions[fresh]
        self.rows = np.insert(self.rows, insert_at, rows[fresh])
        self.values = np.insert(self.values, insert_at, values[fresh])
        self.counts = np.insert(
            self.counts, insert_at, np.ones(int(fresh.sum()), dtype=np.int64)
        )

    def gather(self, rows: np.ndarray) -> np.ndarray:
        """Values at ``rows``, zeros where absent."""
        return _gather_sorted(self.rows, self.values, rows)

    def gather_counts(self, rows: np.ndarray) -> np.ndarray:
        """Contributor counts at ``rows``, zeros where absent."""
        out = np.zeros(rows.size, dtype=np.int64)
        hits, positions = _sorted_hits(self.rows, rows)
        out[hits] = self.counts[positions]
        return out

    def copy(self) -> "_SparseMass":
        """Independent mass vector holding the same floats."""
        clone = _SparseMass()
        clone.rows = self.rows.copy()
        clone.values = self.values.copy()
        clone.counts = self.counts.copy()
        return clone


def _sorted_hits(
    vec_rows: np.ndarray, rows: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Locate query ``rows`` inside a sorted index vector.

    Returns ``(hits, positions)``: a boolean mask over ``rows`` marking
    which queries are present in ``vec_rows``, and the position of each
    hit inside ``vec_rows`` (aligned with ``rows[hits]``).  The one
    binary-search-with-end-clamp dance every sparse gather in this
    module needs.
    """
    if vec_rows.size == 0 or rows.size == 0:
        return np.zeros(rows.size, dtype=bool), np.zeros(0, dtype=np.intp)
    positions = np.searchsorted(vec_rows, rows)
    positions[positions == vec_rows.size] = vec_rows.size - 1
    hits = vec_rows[positions] == rows
    return hits, positions[hits]


def _gather_sorted(
    vec_rows: np.ndarray, vec_values: np.ndarray, rows: np.ndarray
) -> np.ndarray:
    """Gather a sorted sparse vector at query rows (missing -> 0)."""
    out = np.zeros(rows.size)
    hits, positions = _sorted_hits(vec_rows, rows)
    out[hits] = vec_values[positions]
    return out


def _eq4_diff(
    scheduled: np.ndarray, competing: np.ndarray, column: np.ndarray
) -> np.ndarray:
    """Per-user Eq. 4 gain of adding ``column`` on top of the given masses.

    The one what-if algebra every engine query reduces to::

        (M + m_r) / (K + M + m_r)  -  M / (K + M)

    with the ``0 / 0 = 0`` rule.  Kept as the single shared
    implementation so the scalar and batched query paths cannot drift
    apart (their bit-identical agreement is a documented contract).
    """
    old_denominator = competing + scheduled
    new_denominator = old_denominator + column
    after = masked_ratio(scheduled + column, new_denominator)
    before = masked_ratio(scheduled, old_denominator)
    return after - before


def _eq4_gain(
    scheduled: np.ndarray,
    competing: np.ndarray,
    column: np.ndarray,
    sigma: np.ndarray,
) -> float:
    """``sigma @ _eq4_diff(...)`` — the scalar Eq. 4 score."""
    return float(sigma @ _eq4_diff(scheduled, competing, column))


class SparseEngine(ScoreEngine):
    """CSC-native engine: every query costs O(nnz of the touched columns).

    Works with either interest backend (a dense backend is gathered
    column-by-column), but is built for ``InterestMatrix(backend="sparse")``
    where it never materializes a dense user-axis temporary — see the
    module docstring's sparse design notes.
    """

    #: Densify an interval's ``K_t`` gathers once its accumulated rival
    #: mass covers more than this fraction of the user base: fancy
    #: indexing a dense vector is then far cheaper than binary-searching
    #: a near-dense sparse one, and one O(|U|) vector per *rival-heavy*
    #: interval is a bounded trade (never the O(|U| * |E|) table the
    #: sparse engine exists to avoid).  Gathered values are bit-identical
    #: either way.
    DENSIFY_FRACTION = 0.125

    def __init__(self, instance: SESInstance) -> None:
        self._interest = instance.interest
        # Fortran order makes the per-query sigma[rows, t] gather walk one
        # contiguous column instead of striding the whole matrix; the
        # gathered values (and every downstream dot) are unchanged.
        self._sigma = np.asfortranarray(instance.activity.matrix)
        self._scheduled_mass: dict[int, _SparseMass] = {}
        # K_t as sparse vectors, accumulated lazily per interval so the
        # dense (|T|, |U|) competing_mass table is never touched
        self._competing_entries: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        # dense K_t expansions for rival-heavy intervals (see above)
        self._competing_dense: dict[int, np.ndarray] = {}
        super().__init__(instance)

    # ------------------------------------------------------------------
    def _reset_state(self) -> None:
        self._scheduled_mass.clear()

    def _clone_shell(self) -> "SparseEngine":
        # bypass __init__: the Fortran-ordered sigma copy is O(|U| * |T|)
        # and immutable, so the clone shares it (and the interest store)
        # while copying the per-interval mass and competing caches
        other = object.__new__(SparseEngine)
        other._interest = self._interest
        other._sigma = self._sigma
        other._scheduled_mass = {
            interval: mass.copy()
            for interval, mass in self._scheduled_mass.items()
        }
        other._competing_entries = {
            interval: (rows.copy(), values.copy())
            for interval, (rows, values) in self._competing_entries.items()
        }
        other._competing_dense = {
            interval: dense.copy()
            for interval, dense in self._competing_dense.items()
        }
        ScoreEngine.__init__(other, self._instance)
        return other

    def _apply(self, event: int, interval: int, sign: int) -> None:
        if sign < 0 and not self._schedule.events_at(interval):
            del self._scheduled_mass[interval]
            return
        mass = self._scheduled_mass.get(interval)
        if mass is None:
            mass = _SparseMass()
            self._scheduled_mass[interval] = mass
        rows, values = self._interest.event_column_entries(event)
        mass.update(rows, values, sign)

    def _competing_at(self, interval: int, rows: np.ndarray) -> np.ndarray:
        dense = self._competing_dense.get(interval)
        if dense is not None:
            return dense[rows]
        cached = self._competing_entries.get(interval)
        if cached is None:
            cached = self._interest.competing_mass_entries(
                self._instance.competing_by_interval[interval]
            )
            self._competing_entries[interval] = cached
        if cached[0].size > self.DENSIFY_FRACTION * self._instance.n_users:
            dense = np.zeros(self._instance.n_users)
            dense[cached[0]] = cached[1]
            self._competing_dense[interval] = dense
            # the sparse entries are dead from here on: reads short-circuit
            # on the dense expansion and rival deltas update it in place
            del self._competing_entries[interval]
            return dense[rows]
        return _gather_sorted(cached[0], cached[1], rows)

    #: Route an ``M_t`` gather through a dense scratch vector once the
    #: query batch is this fraction of the user base: one O(|U|) scatter
    #: plus direct fancy indexing beats binary-searching the mass
    #: support per query row.  Gathered values are bit-identical either
    #: way (same floats, different lookup), so this is purely a
    #: constant-factor lever for the batched row refreshes GRD-family
    #: solvers hammer during a re-solve.
    GATHER_DENSE_FRACTION = 0.125

    def _scheduled_at(self, interval: int, rows: np.ndarray) -> np.ndarray:
        mass = self._scheduled_mass.get(interval)
        if mass is None:
            return np.zeros(rows.size)
        if rows.size > self.GATHER_DENSE_FRACTION * self._instance.n_users:
            dense = np.zeros(self._instance.n_users)
            dense[mass.rows] = mass.values
            return dense[rows]
        return mass.gather(rows)

    # -- live-instance deltas -------------------------------------------
    # column gathers go through the (live) interest store at query time,
    # so arrivals and removals need no cache surgery at all
    def _on_event_interest_replaced(self, delta: EventInterestReplaced) -> None:
        interval = self._schedule.interval_of(delta.event)
        if interval is None:
            return
        mass = self._scheduled_mass[interval]
        mass.update(delta.old_rows, delta.old_values, sign=-1)
        mass.update(delta.rows, delta.values, sign=+1)

    def _on_competing_added(self, delta: CompetingAdded) -> None:
        dense = self._competing_dense.get(delta.interval)
        if dense is not None:
            # densified intervals keep only the dense expansion current
            dense[delta.rows] += delta.values
            return
        cached = self._competing_entries.get(delta.interval)
        if cached is not None:
            # merge-add the new rival's column: same left-to-right per-user
            # accumulation order as a fresh competing_mass_entries() call
            rows = np.concatenate([cached[0], delta.rows])
            values = np.concatenate([cached[1], delta.values])
            self._competing_entries[delta.interval] = merge_entries(
                rows, values
            )

    # ------------------------------------------------------------------
    def _score_unchecked(self, event: int, interval: int) -> float:
        rows, column = self._interest.event_column_entries(event)
        if rows.size == 0:
            # a zero-interest event changes no denominator: score is 0
            return 0.0
        return _eq4_gain(
            self._scheduled_at(interval, rows),
            self._competing_at(interval, rows),
            column,
            self._sigma[rows, interval],
        )

    def score(self, event: int, interval: int) -> float:
        if self._schedule.contains_event(event):
            raise DuplicateEventError(
                f"event {event} is already scheduled; Eq. 4 requires r not in E(S)"
            )
        return self._score_unchecked(event, interval)

    def scores_for_interval(self, interval: int, events: Sequence[int]) -> np.ndarray:
        event_indices = [int(event) for event in events]
        for event in event_indices:
            if self._schedule.contains_event(event):
                raise DuplicateEventError(
                    f"event {event} is already scheduled; "
                    f"Eq. 4 requires r not in E(S)"
                )
        if not event_indices:
            return np.zeros(0)
        if len(event_indices) == 1:
            # lean single-column path: identical gathers and elementwise
            # ops as the batched path below restricted to one slice (so
            # the result is bit-identical), minus the concatenation and
            # per-slice bookkeeping — this is the query the lazy heap's
            # stale rescoring fires thousands of times per re-solve
            rows, column = self._interest.event_column_entries(
                event_indices[0]
            )
            if rows.size == 0:
                return np.zeros(1)
            diff = _eq4_diff(
                self._scheduled_at(interval, rows),
                self._competing_at(interval, rows),
                column,
            )
            return np.array([float(self._sigma[rows, interval] @ diff)])
        # Batched evaluation: concatenate every queried column's entries,
        # gather K_t and M_t once over the combined rows, do the Eq. 4
        # algebra elementwise, then reduce per column over its slice.
        # Identical floating-point results to the one-column-at-a-time
        # path (same gathers, same elementwise ops, same per-slice dot),
        # but the searchsorted/gather overhead is paid once per row
        # refresh instead of once per candidate event.
        parts = [self._interest.event_column_entries(e) for e in event_indices]
        sizes = np.array([rows.size for rows, _ in parts], dtype=np.intp)
        if not sizes.sum():
            return np.zeros(len(event_indices))
        rows = np.concatenate([rows for rows, _ in parts])
        column = np.concatenate([values for _, values in parts])
        diff = _eq4_diff(
            self._scheduled_at(interval, rows),
            self._competing_at(interval, rows),
            column,
        )
        weighted = self._sigma[rows, interval]
        scores = np.zeros(len(event_indices))
        offset = 0
        for position, size in enumerate(sizes):
            if size:
                scores[position] = float(
                    weighted[offset : offset + size]
                    @ diff[offset : offset + size]
                )
            offset += size
        return scores

    def _mass_without_at(
        self, interval: int, excluding: int, rows: np.ndarray
    ) -> np.ndarray:
        """``M_t`` gathered at ``rows`` with one scheduled column withdrawn.

        Pure function mirroring :class:`_SparseMass.update`'s subtraction:
        the excluded column's values are removed where they overlap
        ``rows``, and rows whose contributor count would return to zero
        are hard-zeroed exactly.
        """
        mass = self._scheduled_mass[interval]
        gathered = mass.gather(rows)
        excluded_rows, excluded_values = self._interest.event_column_entries(
            excluding
        )
        if excluded_rows.size == 0:
            return gathered
        hits, positions = _sorted_hits(excluded_rows, rows)
        gathered[hits] -= excluded_values[positions]
        dead = hits & (mass.gather_counts(rows) == 1)
        gathered[dead] = 0.0
        return gathered

    def removal_losses(self, events: Sequence[int]) -> np.ndarray:
        """Batched removal losses: one gather pass per home interval.

        Groups the victims by their home interval, concatenates their
        column entries, gathers ``M_t`` (values + contributor counts) and
        ``K_t`` once over the combined rows and reduces per victim over
        its slice — the same elementwise operations as the scalar
        :meth:`removal_loss`, so the results are bit-identical, but the
        searchsorted/gather overhead is paid once per interval instead of
        once per victim.
        """
        event_indices = [int(event) for event in events]
        losses = np.zeros(len(event_indices))
        groups: dict[int, list[int]] = {}
        for position, event in enumerate(event_indices):
            interval = self._schedule.interval_of(event)
            if interval is None:
                raise UnknownEntityError(
                    f"event {event} is not scheduled; removal_loss is "
                    f"defined only for scheduled events"
                )
            groups.setdefault(interval, []).append(position)
        for interval, positions in groups.items():
            parts = [
                self._interest.event_column_entries(event_indices[p])
                for p in positions
            ]
            sizes = [rows.size for rows, _ in parts]
            if not sum(sizes):
                continue
            rows = np.concatenate([rows for rows, _ in parts])
            column = np.concatenate([values for _, values in parts])
            mass = self._scheduled_mass[interval]
            gathered = mass.gather(rows)
            counts = mass.gather_counts(rows)
            # each victim's own rows are necessarily present in M_t, so
            # the exclusion is a pure subtraction plus the count==1
            # hard-zero rule (exactly _mass_without_at, batched)
            scheduled = gathered - column
            scheduled[counts == 1] = 0.0
            diff = _eq4_diff(
                scheduled, self._competing_at(interval, rows), column
            )
            sigma = self._sigma[rows, interval]
            offset = 0
            for position, size in zip(positions, sizes):
                if size:
                    losses[position] = float(
                        sigma[offset : offset + size]
                        @ diff[offset : offset + size]
                    )
                offset += size
        return losses

    def _score_excluding(self, event: int, interval: int, excluding: int) -> float:
        rows, column = self._interest.event_column_entries(event)
        if rows.size == 0:
            return 0.0
        return _eq4_gain(
            self._mass_without_at(interval, excluding, rows),
            self._competing_at(interval, rows),
            column,
            self._sigma[rows, interval],
        )

    def scores_excluding_each(
        self, event: int, interval: int, excluding: Sequence[int]
    ) -> np.ndarray:
        """Batched what-if scores: the base gathers are shared.

        ``event``'s column, ``K_t``, ``M_t`` and the contributor counts
        are gathered once; each excluded sibling then only pays for its
        own overlap adjustment.  Elementwise operations match the scalar
        :meth:`score_excluding` exactly (bit-identical results).
        """
        excluded_events = [int(excluded) for excluded in excluding]
        if self._schedule.contains_event(event):
            raise DuplicateEventError(
                f"event {event} is already scheduled; Eq. 4 requires r not in E(S)"
            )
        for excluded in excluded_events:
            if self._schedule.interval_of(excluded) != interval:
                raise UnknownEntityError(
                    f"event {excluded} is not scheduled at interval "
                    f"{interval}; cannot exclude it"
                )
        scores = np.zeros(len(excluded_events))
        rows, column = self._interest.event_column_entries(event)
        if rows.size == 0 or not excluded_events:
            return scores
        mass = self._scheduled_mass[interval]
        base = mass.gather(rows)
        counts = mass.gather_counts(rows)
        competing = self._competing_at(interval, rows)
        sigma = self._sigma[rows, interval]
        for position, excluded in enumerate(excluded_events):
            excluded_rows, excluded_values = (
                self._interest.event_column_entries(excluded)
            )
            scheduled = base.copy()
            if excluded_rows.size:
                hits, positions = _sorted_hits(excluded_rows, rows)
                scheduled[hits] -= excluded_values[positions]
                dead = hits & (counts == 1)
                scheduled[dead] = 0.0
            scores[position] = _eq4_gain(scheduled, competing, column, sigma)
        return scores

    def scores_for_event(
        self, event: int, intervals: Sequence[int]
    ) -> np.ndarray:
        """Batched one-column scoring: the column gather is shared."""
        if self._schedule.contains_event(event):
            raise DuplicateEventError(
                f"event {event} is already scheduled; Eq. 4 requires r not in E(S)"
            )
        interval_indices = [int(interval) for interval in intervals]
        rows, column = self._interest.event_column_entries(event)
        if rows.size == 0:
            return np.zeros(len(interval_indices))
        scores = np.empty(len(interval_indices))
        for position, interval in enumerate(interval_indices):
            scores[position] = _eq4_gain(
                self._scheduled_at(interval, rows),
                self._competing_at(interval, rows),
                column,
                self._sigma[rows, interval],
            )
        return scores

    def omega(self, event: int) -> float:
        interval = self._schedule.interval_of(event)
        if interval is None:
            raise UnknownEntityError(
                f"event {event} is not scheduled; omega is defined only for "
                f"scheduled events"
            )
        rows, column = self._interest.event_column_entries(event)
        if rows.size == 0:
            return 0.0
        denominator = self._competing_at(interval, rows) + self._scheduled_at(
            interval, rows
        )
        ratio = masked_ratio(column, denominator)
        return float(self._sigma[rows, interval] @ ratio)

    def interval_utility(self, interval: int) -> float:
        mass = self._scheduled_mass.get(interval)
        if mass is None or mass.rows.size == 0:
            return 0.0
        competing = self._competing_at(interval, mass.rows)
        ratio = masked_ratio(mass.values, competing + mass.values)
        return float(self._sigma[mass.rows, interval] @ ratio)

    def total_utility(self) -> float:
        return sum(
            self.interval_utility(interval) for interval in self._scheduled_mass
        )

    def export_mass_state(self) -> list[Any]:
        return [
            [
                int(interval),
                mass.rows.tolist(),
                mass.values.tolist(),
                mass.counts.tolist(),
            ]
            for interval, mass in self._scheduled_mass.items()
        ]

    def restore_mass_state(self, state: list[Any]) -> None:
        self._scheduled_mass = {}
        for interval, rows, values, counts in state:
            mass = _SparseMass()
            mass.rows = np.asarray(rows, dtype=np.intp)
            mass.values = np.asarray(values, dtype=float)
            mass.counts = np.asarray(counts, dtype=np.int64)
            self._scheduled_mass[int(interval)] = mass


_ENGINES = {
    "vectorized": VectorizedEngine,
    "sparse": SparseEngine,
    "reference": ReferenceEngine,
}

#: The one source of truth for valid engine kinds: the CLI's ``--engine``
#: choices, :class:`EngineSpec` validation and :func:`make_engine` dispatch
#: all derive from this tuple (ordered: default first).
ENGINE_KINDS: tuple[str, ...] = tuple(_ENGINES)

#: Valid ``mu`` storage backends (see :class:`repro.core.interest.InterestMatrix`).
INTEREST_BACKENDS: tuple[str, ...] = ("dense", "sparse")


@dataclass(frozen=True, slots=True)
class EngineSpec:
    """Typed description of a score-engine configuration.

    Replaces the stringly-typed ``engine_kind`` previously threaded through
    every solver constructor, :func:`make_engine` and the CLI.  Being a
    frozen (hashable) value object, it doubles as the cache key under which
    :class:`repro.api.ScheduleSession` memoizes engine construction.

    Parameters
    ----------
    kind:
        One of :data:`ENGINE_KINDS` — ``"vectorized"`` (default),
        ``"sparse"`` or ``"reference"``.
    backend:
        Optional ``mu`` storage hint for *generated* workloads (``"dense"``
        or ``"sparse"``); ``None`` lets :attr:`interest_backend` pick the
        natural pairing (sparse storage for the sparse engine).
    shards:
        ``None`` (default) builds the flat engine.  An integer ``P >= 1``
        builds a :class:`repro.shard.engine.ShardedEngine` that partitions
        the user axis into P dispatch shards of fixed-size accumulation
        blocks, running ``kind`` sub-engines per block.  Not valid with
        ``kind="reference"`` (the oracle stays whole-instance).
    workers:
        Parallelism for sharded plane fills (defaults to ``shards``);
        only valid together with ``shards``.
    block_users:
        Accumulation-block row count override (defaults to
        :data:`repro.shard.plan.DEFAULT_BLOCK_USERS`); only valid
        together with ``shards``.  Merged results depend on this value
        but never on ``shards``/``workers``.
    """

    kind: str = "vectorized"
    backend: str | None = None
    shards: int | None = None
    workers: int | None = None
    block_users: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in _ENGINES:
            raise ValueError(
                f"unknown engine kind {self.kind!r}; choose from {sorted(_ENGINES)}"
            )
        if self.backend is not None and self.backend not in INTEREST_BACKENDS:
            raise ValueError(
                f"unknown interest backend {self.backend!r}; "
                f"choose from {INTEREST_BACKENDS}"
            )
        if self.shards is None:
            if self.workers is not None or self.block_users is not None:
                raise ValueError(
                    "workers/block_users are sharding parameters; "
                    "set shards as well"
                )
            return
        if self.kind == "reference":
            raise ValueError(
                "the reference engine is the whole-instance oracle; "
                "it does not shard"
            )
        if self.shards < 1:
            raise ValueError(f"shards must be positive, got {self.shards}")
        if self.workers is not None and self.workers < 1:
            raise ValueError(f"workers must be positive, got {self.workers}")
        if self.block_users is not None and self.block_users < 1:
            raise ValueError(
                f"block_users must be positive, got {self.block_users}"
            )

    @classmethod
    def coerce(cls, value: EngineSpec | str | None) -> EngineSpec:
        """Normalize ``None`` (default), a kind string, or a spec to a spec."""
        if value is None:
            return cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            return cls(kind=value)
        raise TypeError(
            f"expected EngineSpec, engine-kind string or None, got {value!r}"
        )

    @property
    def interest_backend(self) -> str:
        """The ``mu`` storage this spec implies for generated workloads."""
        if self.backend is not None:
            return self.backend
        return "sparse" if self.kind == "sparse" else "dense"

    def build(self, instance: SESInstance) -> ScoreEngine:
        """Construct the described engine for ``instance``."""
        if self.shards is not None:
            # deferred import: repro.shard layers on top of repro.core
            from repro.shard.engine import ShardedEngine

            return ShardedEngine(
                instance,
                kind=self.kind,
                shards=self.shards,
                workers=self.workers,
                block_users=self.block_users,
            )
        return _ENGINES[self.kind](instance)


def _stacklevel_outside_repro() -> int:
    """Stacklevel (for a warn() call in our caller) of the first frame
    outside the ``repro`` package.

    The ``engine_kind`` shim is reached through differing depths of
    library frames (``Subclass.__init__ -> Scheduler.__init__ ->
    resolve_engine_spec`` vs a direct base-class construction), so a fixed
    constant would attribute the warning to library code — which Python's
    default filter then silently drops for script callers.
    """
    level = 2  # stacklevel 2 from our caller == that caller's caller
    frame = sys._getframe(2)  # the frame that called our caller
    while frame is not None:
        name = frame.f_globals.get("__name__", "")
        if name != "repro" and not name.startswith("repro."):
            break
        frame = frame.f_back
        level += 1
    return level


def resolve_engine_spec(
    engine: EngineSpec | str | None = None,
    engine_kind: str | None = None,
    owner: str = "Scheduler",
) -> EngineSpec:
    """Collapse the new ``engine`` and legacy ``engine_kind`` arguments.

    Shared by every constructor that still accepts the deprecated
    ``engine_kind=`` keyword; passing it emits a :class:`DeprecationWarning`
    attributed to the first frame outside the library.
    """
    if engine_kind is not None:
        warnings.warn(
            f"{owner}(engine_kind=...) is deprecated; pass "
            f"engine=EngineSpec(kind={engine_kind!r}) instead",
            DeprecationWarning,
            stacklevel=_stacklevel_outside_repro(),
        )
        if engine is not None:
            raise TypeError(
                f"{owner}: pass either engine= or the deprecated "
                f"engine_kind=, not both"
            )
        engine = engine_kind
    return EngineSpec.coerce(engine)


def make_engine(
    instance: SESInstance, spec: EngineSpec | str | None = None
) -> ScoreEngine:
    """Factory: build a score engine from an :class:`EngineSpec`.

    ``EngineSpec(kind="vectorized")`` (the default) broadcasts over dense
    arrays; ``"sparse"`` touches only nonzero interest entries (pair with
    ``InterestMatrix(backend="sparse")`` for Meetup-scale populations);
    ``"reference"`` is the loop-based semantic oracle.

    Passing a bare kind string is deprecated (it predates
    :class:`EngineSpec`); it still works but emits a
    :class:`DeprecationWarning`.
    """
    if isinstance(spec, str):
        warnings.warn(
            f'make_engine(instance, "{spec}") with a string kind is '
            f"deprecated; pass EngineSpec(kind={spec!r}) instead",
            DeprecationWarning,
            stacklevel=2,
        )
    return EngineSpec.coerce(spec).build(instance)
