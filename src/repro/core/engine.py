"""Score engines: interchangeable evaluators of Eq. 1–4 against a live schedule.

Greedy solvers interrogate the objective thousands of times; this module
provides that oracle behind one interface, :class:`ScoreEngine`, with three
implementations:

* :class:`ReferenceEngine` — delegates to the loop-based reference functions
  in :mod:`repro.core.attendance` / :mod:`~repro.core.objective` /
  :mod:`~repro.core.scoring`.  O(|U| * |E_t|) per query.  The semantic
  oracle: slow, obviously-correct, used to cross-check everything else.

* :class:`VectorizedEngine` — maintains, per interval ``t``, the scheduled
  interest mass ``M_t[u] = sum_{e in E_t(S)} mu[u, e]`` as a numpy vector.
  With the competing mass ``K_t`` precomputed on the instance, Eq. 4
  collapses to::

      score(r, t) = sum_u sigma[u, t] * ( (M + m_r) / (K + M + m_r)
                                          -  M      / (K + M) )

  evaluated for *all* candidate events of one interval in a single
  broadcast (chunked over users to bound peak memory).  This is the form
  derived in DESIGN.md §5; equality with the reference engine to 1e-9 is a
  property test.

* :class:`SparseEngine` — the same algebra restricted to nonzero support.

Sparse design notes
-------------------

The per-user summand of Eq. 4 above is ``f(M + m_r) - f(M)`` with
``f(M) = M / (K + M)``; wherever ``mu[u, r] = 0`` the two terms coincide
and the user contributes *exactly* zero.  Jaccard-mined Meetup interest is
overwhelmingly sparse (a user shares tags with a tiny fraction of the
event pool), so almost every user drops out of almost every query.  The
sparse engine exploits this:

* ``mu`` stays in CSC storage (``InterestMatrix(backend="sparse")``); a
  score query gathers only the nonzero ``(rows, values)`` of event ``r``'s
  column — O(nnz(r)) work and memory, independent of ``|U|``;
* the scheduled mass ``M_t`` and competing mass ``K_t`` are kept as sorted
  sparse vectors, gathered at a column's rows by binary search.  ``M_t``
  additionally counts nonzero-mu contributors per row so that removals
  drop entries whose true mass returned to zero (subtraction residue of
  ~1e-16 would otherwise read as ``M / (K + M) = 1`` wherever ``K = 0``);
* ``K_t`` is accumulated lazily per interval from the competing columns
  (``InterestMatrix.competing_mass_entries``), so the dense
  ``(|T|, |U|)`` ``competing_mass`` table on the instance is never
  touched;
* no dense ``(users, events)`` or even ``(users,)`` temporary is ever
  materialized — :meth:`SparseEngine.scores_for_interval` is a per-column
  loop over gathers, whose total footprint is the number of stored
  entries of the queried columns.

All three engines agree to 1e-9 on every query; the cross-engine property
suite (``tests/properties/test_engine_equivalence.py``) draws both interest
backends and random assign/unassign sequences to enforce it.

Both stateful engines mirror the schedule they evaluate: call
:meth:`assign` / :meth:`unassign` as the solver commits moves.  0/0 is
defined as 0 throughout, matching the reference semantics.
"""

from __future__ import annotations

import sys
import warnings
from abc import ABC, abstractmethod
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core import attendance, objective, scoring
from repro.core.errors import DuplicateEventError, UnknownEntityError
from repro.core.instance import SESInstance
from repro.core.interest import masked_ratio
from repro.core.schedule import Assignment, Schedule

__all__ = [
    "ScoreEngine",
    "ReferenceEngine",
    "VectorizedEngine",
    "SparseEngine",
    "EngineSpec",
    "ENGINE_KINDS",
    "INTEREST_BACKENDS",
    "resolve_engine_spec",
    "make_engine",
]


class ScoreEngine(ABC):
    """Stateful evaluator of utilities and marginal scores for one instance."""

    def __init__(self, instance: SESInstance) -> None:
        self._instance = instance
        self._schedule = Schedule(instance)

    # ------------------------------------------------------------------
    @property
    def instance(self) -> SESInstance:
        return self._instance

    @property
    def schedule(self) -> Schedule:
        """The schedule currently mirrored by the engine (do not mutate)."""
        return self._schedule

    def reset(self) -> None:
        """Forget all assignments; equivalent to rebuilding the engine."""
        self._schedule = Schedule(self._instance)
        self._reset_state()

    def assign(self, event: int, interval: int) -> None:
        """Commit ``alpha_event^interval``; scores now reflect the new state."""
        self._schedule.add(Assignment(event=event, interval=interval))
        self._apply(event, interval, sign=+1)

    def unassign(self, event: int) -> None:
        """Withdraw a committed assignment (used by local search / undo)."""
        removed = self._schedule.remove(event)
        self._apply(removed.event, removed.interval, sign=-1)

    # ------------------------------------------------------------------
    # queries every engine must answer
    # ------------------------------------------------------------------
    @abstractmethod
    def score(self, event: int, interval: int) -> float:
        """Eq. 4: utility gain of adding ``event`` at ``interval`` now."""

    @abstractmethod
    def scores_for_interval(
        self, interval: int, events: Sequence[int]
    ) -> np.ndarray:
        """Vector of Eq. 4 scores for many candidate events at one interval."""

    @abstractmethod
    def omega(self, event: int) -> float:
        """Eq. 2: expected attendance of a *scheduled* event."""

    @abstractmethod
    def interval_utility(self, interval: int) -> float:
        """Summed expected attendance of the events at ``interval``."""

    @abstractmethod
    def total_utility(self) -> float:
        """Eq. 3 for the mirrored schedule."""

    # ------------------------------------------------------------------
    # state hooks
    # ------------------------------------------------------------------
    @abstractmethod
    def _reset_state(self) -> None: ...

    @abstractmethod
    def _apply(self, event: int, interval: int, sign: int) -> None: ...


class ReferenceEngine(ScoreEngine):
    """Paper-faithful engine: every query recomputes from the equations."""

    def score(self, event: int, interval: int) -> float:
        return scoring.assignment_score(
            self._instance, self._schedule, Assignment(event=event, interval=interval)
        )

    def scores_for_interval(self, interval: int, events: Sequence[int]) -> np.ndarray:
        return np.array([self.score(event, interval) for event in events])

    def omega(self, event: int) -> float:
        return attendance.expected_attendance(self._instance, self._schedule, event)

    def interval_utility(self, interval: int) -> float:
        return sum(
            attendance.expected_attendance(self._instance, self._schedule, event)
            for event in self._schedule.events_at(interval)
        )

    def total_utility(self) -> float:
        return objective.total_utility(self._instance, self._schedule)

    def _reset_state(self) -> None:
        pass  # the schedule mirror is the only state

    def _apply(self, event: int, interval: int, sign: int) -> None:
        pass  # queries recompute from the schedule every time


class VectorizedEngine(ScoreEngine):
    """Numpy engine maintaining per-interval scheduled-mass vectors.

    Parameters
    ----------
    instance:
        The problem instance.
    chunk_elements:
        Upper bound on the number of matrix elements materialized by one
        broadcast in :meth:`scores_for_interval`; larger inputs are chunked
        along the user axis.  The default (4M doubles = 32 MB per
        temporary) keeps the working set cache-friendly even at full
        Meetup scale.
    """

    def __init__(self, instance: SESInstance, chunk_elements: int = 4_000_000):
        if chunk_elements <= 0:
            raise ValueError(f"chunk_elements must be positive, got {chunk_elements}")
        self._chunk_elements = int(chunk_elements)
        self._mu = instance.interest.candidate
        self._sigma = instance.activity.matrix
        self._scheduled_mass: dict[int, np.ndarray] = {}
        self._contributors: dict[int, np.ndarray] = {}
        super().__init__(instance)

    # ------------------------------------------------------------------
    def _reset_state(self) -> None:
        self._scheduled_mass.clear()
        self._contributors.clear()

    def _apply(self, event: int, interval: int, sign: int) -> None:
        if sign < 0 and not self._schedule.events_at(interval):
            del self._scheduled_mass[interval]
            del self._contributors[interval]
            return
        mass = self._scheduled_mass.get(interval)
        if mass is None:
            mass = np.zeros(self._instance.n_users)
            self._scheduled_mass[interval] = mass
            self._contributors[interval] = np.zeros(
                self._instance.n_users, dtype=np.int64
            )
        column = self._mu[:, event]
        contributors = self._contributors[interval]
        if sign > 0:
            mass += column
            contributors += column != 0.0
            return
        # Plain subtraction leaves ~1e-16 residue on users whose remaining
        # mass should be exactly zero, and where the competing mass is also
        # zero the ratio M / (K + M) then evaluates to 1 instead of 0 — a
        # whole sigma[u, t] of phantom utility per affected user.  Counting
        # nonzero-mu contributors per user lets us hard-zero exactly those
        # entries in O(|U|), without rebuilding from the sibling columns.
        mass -= column
        contributors -= column != 0.0
        mass[contributors == 0] = 0.0

    def _mass(self, interval: int) -> np.ndarray:
        mass = self._scheduled_mass.get(interval)
        if mass is None:
            return np.zeros(self._instance.n_users)
        return mass

    # ------------------------------------------------------------------
    def score(self, event: int, interval: int) -> float:
        if self._schedule.contains_event(event):
            raise DuplicateEventError(
                f"event {event} is already scheduled; Eq. 4 requires r not in E(S)"
            )
        scheduled = self._mass(interval)
        competing = self._instance.competing_mass[interval]
        sigma = self._sigma[:, interval]
        column = self._mu[:, event]

        old_denominator = competing + scheduled
        new_denominator = old_denominator + column
        after = masked_ratio(scheduled + column, new_denominator)
        before = masked_ratio(scheduled, old_denominator)
        return float(sigma @ (after - before))

    def scores_for_interval(self, interval: int, events: Sequence[int]) -> np.ndarray:
        event_indices = np.asarray(list(events), dtype=np.intp)
        if event_indices.size == 0:
            return np.zeros(0)
        for event in event_indices:
            if self._schedule.contains_event(int(event)):
                raise DuplicateEventError(
                    f"event {int(event)} is already scheduled; "
                    f"Eq. 4 requires r not in E(S)"
                )

        n_users = self._instance.n_users
        scheduled = self._mass(interval)
        competing = self._instance.competing_mass[interval]
        sigma = self._sigma[:, interval]
        old_denominator = competing + scheduled
        base = float(sigma @ masked_ratio(scheduled, old_denominator))

        # Chunked, allocation-lean evaluation.  Per chunk only two
        # (users x events) temporaries are materialized: the mu column
        # gather (reused in place as the numerator, then as the ratio)
        # and the denominator.  Where the denominator is 0 the numerator
        # is necessarily 0 as well (all masses are non-negative), so the
        # masked divide leaves the correct 0 behind without pre-zeroing.
        scores = np.zeros(event_indices.size)
        chunk_users = max(1, self._chunk_elements // max(1, event_indices.size))
        for start in range(0, n_users, chunk_users):
            stop = min(start + chunk_users, n_users)
            # advanced indexing already yields a fresh array we may mutate
            work = self._mu[start:stop, event_indices]  # mu columns
            denominator = work + old_denominator[start:stop, None]
            np.add(work, scheduled[start:stop, None], out=work)  # numerator
            np.divide(work, denominator, out=work, where=denominator > 0.0)
            scores += sigma[start:stop] @ work
        return scores - base

    def omega(self, event: int) -> float:
        interval = self._schedule.interval_of(event)
        if interval is None:
            raise UnknownEntityError(
                f"event {event} is not scheduled; omega is defined only for "
                f"scheduled events"
            )
        denominator = self._instance.competing_mass[interval] + self._mass(interval)
        ratio = masked_ratio(self._mu[:, event], denominator)
        return float(self._sigma[:, interval] @ ratio)

    def interval_utility(self, interval: int) -> float:
        scheduled = self._mass(interval)
        denominator = self._instance.competing_mass[interval] + scheduled
        ratio = masked_ratio(scheduled, denominator)
        return float(self._sigma[:, interval] @ ratio)

    def total_utility(self) -> float:
        return sum(
            self.interval_utility(interval) for interval in self._scheduled_mass
        )


class _SparseMass:
    """A sparse non-negative vector: sorted row indices + parallel values.

    The scheduled interest mass ``M_t`` of one interval.  Alongside each
    value we count how many scheduled columns contribute a nonzero entry
    to that row; when a removal drops a row's count to zero the entry is
    discarded outright, so subtraction residue (~1e-16 where the true
    remaining mass is exactly zero) can never leak phantom utility into
    the ``M / (K + M)`` ratio.
    """

    __slots__ = ("rows", "values", "counts")

    def __init__(self) -> None:
        self.rows = np.zeros(0, dtype=np.intp)
        self.values = np.zeros(0)
        self.counts = np.zeros(0, dtype=np.int64)

    def update(self, rows: np.ndarray, values: np.ndarray, sign: int) -> None:
        """Merge-add (``sign=+1``) or merge-subtract (``-1``) one column."""
        merged_rows = np.concatenate([self.rows, rows])
        merged_values = np.concatenate([self.values, sign * values])
        merged_counts = np.concatenate(
            [self.counts, np.full(rows.size, sign, dtype=np.int64)]
        )
        unique, inverse = np.unique(merged_rows, return_inverse=True)
        summed = np.zeros(unique.size)
        np.add.at(summed, inverse, merged_values)
        counts = np.zeros(unique.size, dtype=np.int64)
        np.add.at(counts, inverse, merged_counts)
        keep = counts > 0
        self.rows = unique[keep].astype(np.intp, copy=False)
        self.values = summed[keep]
        self.counts = counts[keep]

    def gather(self, rows: np.ndarray) -> np.ndarray:
        """Values at ``rows`` (sorted), zeros where absent."""
        return _gather_sorted(self.rows, self.values, rows)


def _gather_sorted(
    vec_rows: np.ndarray, vec_values: np.ndarray, rows: np.ndarray
) -> np.ndarray:
    """Gather a sorted sparse vector at sorted query rows (missing -> 0)."""
    out = np.zeros(rows.size)
    if vec_rows.size == 0 or rows.size == 0:
        return out
    positions = np.searchsorted(vec_rows, rows)
    positions[positions == vec_rows.size] = vec_rows.size - 1
    hits = vec_rows[positions] == rows
    out[hits] = vec_values[positions[hits]]
    return out


class SparseEngine(ScoreEngine):
    """CSC-native engine: every query costs O(nnz of the touched columns).

    Works with either interest backend (a dense backend is gathered
    column-by-column), but is built for ``InterestMatrix(backend="sparse")``
    where it never materializes a dense user-axis temporary — see the
    module docstring's sparse design notes.
    """

    def __init__(self, instance: SESInstance) -> None:
        self._interest = instance.interest
        self._sigma = instance.activity.matrix
        self._scheduled_mass: dict[int, _SparseMass] = {}
        # K_t as sparse vectors, accumulated lazily per interval so the
        # dense (|T|, |U|) competing_mass table is never touched
        self._competing_entries: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        super().__init__(instance)

    # ------------------------------------------------------------------
    def _reset_state(self) -> None:
        self._scheduled_mass.clear()

    def _apply(self, event: int, interval: int, sign: int) -> None:
        if sign < 0 and not self._schedule.events_at(interval):
            del self._scheduled_mass[interval]
            return
        mass = self._scheduled_mass.get(interval)
        if mass is None:
            mass = _SparseMass()
            self._scheduled_mass[interval] = mass
        rows, values = self._interest.event_column_entries(event)
        mass.update(rows, values, sign)

    def _competing_at(self, interval: int, rows: np.ndarray) -> np.ndarray:
        cached = self._competing_entries.get(interval)
        if cached is None:
            cached = self._interest.competing_mass_entries(
                self._instance.competing_by_interval[interval]
            )
            self._competing_entries[interval] = cached
        return _gather_sorted(cached[0], cached[1], rows)

    def _scheduled_at(self, interval: int, rows: np.ndarray) -> np.ndarray:
        mass = self._scheduled_mass.get(interval)
        if mass is None:
            return np.zeros(rows.size)
        return mass.gather(rows)

    # ------------------------------------------------------------------
    def _score_unchecked(self, event: int, interval: int) -> float:
        rows, column = self._interest.event_column_entries(event)
        if rows.size == 0:
            # a zero-interest event changes no denominator: score is 0
            return 0.0
        scheduled = self._scheduled_at(interval, rows)
        old_denominator = self._competing_at(interval, rows) + scheduled
        new_denominator = old_denominator + column
        after = masked_ratio(scheduled + column, new_denominator)
        before = masked_ratio(scheduled, old_denominator)
        sigma = self._sigma[rows, interval]
        return float(sigma @ (after - before))

    def score(self, event: int, interval: int) -> float:
        if self._schedule.contains_event(event):
            raise DuplicateEventError(
                f"event {event} is already scheduled; Eq. 4 requires r not in E(S)"
            )
        return self._score_unchecked(event, interval)

    def scores_for_interval(self, interval: int, events: Sequence[int]) -> np.ndarray:
        event_indices = [int(event) for event in events]
        for event in event_indices:
            if self._schedule.contains_event(event):
                raise DuplicateEventError(
                    f"event {event} is already scheduled; "
                    f"Eq. 4 requires r not in E(S)"
                )
        return np.array(
            [self._score_unchecked(event, interval) for event in event_indices]
        )

    def omega(self, event: int) -> float:
        interval = self._schedule.interval_of(event)
        if interval is None:
            raise UnknownEntityError(
                f"event {event} is not scheduled; omega is defined only for "
                f"scheduled events"
            )
        rows, column = self._interest.event_column_entries(event)
        if rows.size == 0:
            return 0.0
        denominator = self._competing_at(interval, rows) + self._scheduled_at(
            interval, rows
        )
        ratio = masked_ratio(column, denominator)
        return float(self._sigma[rows, interval] @ ratio)

    def interval_utility(self, interval: int) -> float:
        mass = self._scheduled_mass.get(interval)
        if mass is None or mass.rows.size == 0:
            return 0.0
        competing = self._competing_at(interval, mass.rows)
        ratio = masked_ratio(mass.values, competing + mass.values)
        return float(self._sigma[mass.rows, interval] @ ratio)

    def total_utility(self) -> float:
        return sum(
            self.interval_utility(interval) for interval in self._scheduled_mass
        )


_ENGINES = {
    "vectorized": VectorizedEngine,
    "sparse": SparseEngine,
    "reference": ReferenceEngine,
}

#: The one source of truth for valid engine kinds: the CLI's ``--engine``
#: choices, :class:`EngineSpec` validation and :func:`make_engine` dispatch
#: all derive from this tuple (ordered: default first).
ENGINE_KINDS: tuple[str, ...] = tuple(_ENGINES)

#: Valid ``mu`` storage backends (see :class:`repro.core.interest.InterestMatrix`).
INTEREST_BACKENDS: tuple[str, ...] = ("dense", "sparse")


@dataclass(frozen=True, slots=True)
class EngineSpec:
    """Typed description of a score-engine configuration.

    Replaces the stringly-typed ``engine_kind`` previously threaded through
    every solver constructor, :func:`make_engine` and the CLI.  Being a
    frozen (hashable) value object, it doubles as the cache key under which
    :class:`repro.api.ScheduleSession` memoizes engine construction.

    Parameters
    ----------
    kind:
        One of :data:`ENGINE_KINDS` — ``"vectorized"`` (default),
        ``"sparse"`` or ``"reference"``.
    backend:
        Optional ``mu`` storage hint for *generated* workloads (``"dense"``
        or ``"sparse"``); ``None`` lets :attr:`interest_backend` pick the
        natural pairing (sparse storage for the sparse engine).
    """

    kind: str = "vectorized"
    backend: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in _ENGINES:
            raise ValueError(
                f"unknown engine kind {self.kind!r}; choose from {sorted(_ENGINES)}"
            )
        if self.backend is not None and self.backend not in INTEREST_BACKENDS:
            raise ValueError(
                f"unknown interest backend {self.backend!r}; "
                f"choose from {INTEREST_BACKENDS}"
            )

    @classmethod
    def coerce(cls, value: EngineSpec | str | None) -> EngineSpec:
        """Normalize ``None`` (default), a kind string, or a spec to a spec."""
        if value is None:
            return cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            return cls(kind=value)
        raise TypeError(
            f"expected EngineSpec, engine-kind string or None, got {value!r}"
        )

    @property
    def interest_backend(self) -> str:
        """The ``mu`` storage this spec implies for generated workloads."""
        if self.backend is not None:
            return self.backend
        return "sparse" if self.kind == "sparse" else "dense"

    def build(self, instance: SESInstance) -> ScoreEngine:
        """Construct the described engine for ``instance``."""
        return _ENGINES[self.kind](instance)


def _stacklevel_outside_repro() -> int:
    """Stacklevel (for a warn() call in our caller) of the first frame
    outside the ``repro`` package.

    The ``engine_kind`` shim is reached through differing depths of
    library frames (``Subclass.__init__ -> Scheduler.__init__ ->
    resolve_engine_spec`` vs a direct base-class construction), so a fixed
    constant would attribute the warning to library code — which Python's
    default filter then silently drops for script callers.
    """
    level = 2  # stacklevel 2 from our caller == that caller's caller
    frame = sys._getframe(2)  # the frame that called our caller
    while frame is not None:
        name = frame.f_globals.get("__name__", "")
        if name != "repro" and not name.startswith("repro."):
            break
        frame = frame.f_back
        level += 1
    return level


def resolve_engine_spec(
    engine: EngineSpec | str | None = None,
    engine_kind: str | None = None,
    owner: str = "Scheduler",
) -> EngineSpec:
    """Collapse the new ``engine`` and legacy ``engine_kind`` arguments.

    Shared by every constructor that still accepts the deprecated
    ``engine_kind=`` keyword; passing it emits a :class:`DeprecationWarning`
    attributed to the first frame outside the library.
    """
    if engine_kind is not None:
        warnings.warn(
            f"{owner}(engine_kind=...) is deprecated; pass "
            f"engine=EngineSpec(kind={engine_kind!r}) instead",
            DeprecationWarning,
            stacklevel=_stacklevel_outside_repro(),
        )
        if engine is not None:
            raise TypeError(
                f"{owner}: pass either engine= or the deprecated "
                f"engine_kind=, not both"
            )
        engine = engine_kind
    return EngineSpec.coerce(engine)


def make_engine(
    instance: SESInstance, spec: EngineSpec | str | None = None
) -> ScoreEngine:
    """Factory: build a score engine from an :class:`EngineSpec`.

    ``EngineSpec(kind="vectorized")`` (the default) broadcasts over dense
    arrays; ``"sparse"`` touches only nonzero interest entries (pair with
    ``InterestMatrix(backend="sparse")`` for Meetup-scale populations);
    ``"reference"`` is the loop-based semantic oracle.

    Passing a bare kind string is deprecated (it predates
    :class:`EngineSpec`); it still works but emits a
    :class:`DeprecationWarning`.
    """
    if isinstance(spec, str):
        warnings.warn(
            f'make_engine(instance, "{spec}") with a string kind is '
            f"deprecated; pass EngineSpec(kind={spec!r}) instead",
            DeprecationWarning,
            stacklevel=2,
        )
    return EngineSpec.coerce(spec).build(instance)
