"""Core SES problem model: entities, instances, schedules, Eq. 1–4 semantics.

This subpackage is the executable form of the paper's Section II.  The
import graph is strictly layered::

    entities -> interest/activity -> instance -> live -> schedule
             -> feasibility -> attendance -> objective -> scoring -> engine
             -> scoreplane

:mod:`repro.core.live` adds the mutable counterpart of the immutable
instance: :class:`LiveInstance` absorbs streaming change ops in O(delta)
and freezes back into an equivalent :class:`SESInstance` on demand.
"""

from repro.core.activity import ActivityModel
from repro.core.attendance import (
    attendance_probability,
    expected_attendance,
    luce_denominator,
)
from repro.core.engine import (
    ENGINE_KINDS,
    EngineSpec,
    ReferenceEngine,
    ScoreEngine,
    SparseEngine,
    VectorizedEngine,
    make_engine,
)
from repro.core.entities import (
    CandidateEvent,
    CompetingEvent,
    Organizer,
    TimeInterval,
    User,
)
from repro.core.errors import (
    DuplicateEventError,
    InfeasibleAssignmentError,
    InstanceValidationError,
    ScheduleSizeError,
    SESError,
    UnknownEntityError,
)
from repro.core.feasibility import (
    FeasibilityChecker,
    explain_infeasibility,
    is_schedule_feasible,
)
from repro.core.instance import SESInstance
from repro.core.interest import InterestMatrix
from repro.core.live import (
    CompetingAdded,
    EventAdded,
    EventInterestReplaced,
    EventRemoved,
    LiveDelta,
    LiveInstance,
    LiveInterest,
)
from repro.core.objective import (
    interval_utility_fast,
    total_utility,
    total_utility_fast,
    utility_upper_bound,
)
from repro.core.schedule import Assignment, Schedule
from repro.core.scoreplane import ScorePlane
from repro.core.timegrid import (
    AFTERNOON_AND_EVENING,
    CalendarGrid,
    DayPart,
    EVENING_ONLY,
)
from repro.core.scoring import assignment_score

__all__ = [
    "ActivityModel",
    "AFTERNOON_AND_EVENING",
    "Assignment",
    "CalendarGrid",
    "CandidateEvent",
    "CompetingEvent",
    "DayPart",
    "DuplicateEventError",
    "ENGINE_KINDS",
    "EVENING_ONLY",
    "EngineSpec",
    "FeasibilityChecker",
    "InfeasibleAssignmentError",
    "InstanceValidationError",
    "InterestMatrix",
    "Organizer",
    "ReferenceEngine",
    "SESError",
    "SESInstance",
    "Schedule",
    "ScheduleSizeError",
    "ScoreEngine",
    "ScorePlane",
    "SparseEngine",
    "TimeInterval",
    "UnknownEntityError",
    "User",
    "VectorizedEngine",
    "assignment_score",
    "attendance_probability",
    "expected_attendance",
    "explain_infeasibility",
    "interval_utility_fast",
    "is_schedule_feasible",
    "luce_denominator",
    "make_engine",
    "total_utility",
    "total_utility_fast",
    "utility_upper_bound",
]
