"""Feasibility of schedules and assignments (paper Section II).

A schedule ``S`` is feasible iff, inside every interval ``t``:

1. **location constraint** — no two events of ``E_t(S)`` share a location;
2. **resources constraint** — ``sum_{e in E_t(S)} xi_e <= theta``.

A *valid* assignment additionally requires the event to be unscheduled.

:class:`FeasibilityChecker` maintains the per-interval location sets and
resource totals incrementally, so greedy solvers pay O(1) per feasibility
probe instead of re-scanning the schedule.  :func:`is_schedule_feasible`
is the stateless one-shot variant used by validators and tests.
"""

from __future__ import annotations

from repro.core.errors import InfeasibleAssignmentError
from repro.core.instance import SESInstance
from repro.core.schedule import Assignment, Schedule

__all__ = ["FeasibilityChecker", "is_schedule_feasible", "explain_infeasibility"]

# Tolerance for the resources constraint: xi values are real numbers, and a
# chain of float additions must not spuriously reject a schedule that is
# exactly at capacity.
_RESOURCE_EPS = 1e-9


class FeasibilityChecker:
    """Incremental tracker of the location and resources constraints.

    The checker mirrors a schedule: call :meth:`apply` after every accepted
    assignment (and :meth:`unapply` after removals).  Probing with
    :meth:`is_feasible`/:meth:`is_valid` never mutates state.
    """

    def __init__(
        self, instance: SESInstance, schedule: Schedule | None = None
    ) -> None:
        self._instance = instance
        self._locations_used: dict[int, set[int]] = {}
        self._resources_used: dict[int, float] = {}
        self._assigned_events: set[int] = set()
        if schedule is not None:
            for assignment in schedule:
                self.apply(assignment)

    # ------------------------------------------------------------------
    # probes
    # ------------------------------------------------------------------
    def is_feasible(self, assignment: Assignment) -> bool:
        """Would adding ``assignment`` keep both interval constraints?"""
        event = self._instance.events[assignment.event]
        interval = assignment.interval
        used_locations = self._locations_used.get(interval)
        if used_locations and event.location in used_locations:
            return False
        budget = self._resources_used.get(interval, 0.0) + event.required_resources
        return budget <= self._instance.theta + _RESOURCE_EPS

    def is_valid(self, assignment: Assignment) -> bool:
        """Feasible *and* the event is not already scheduled (paper's validity)."""
        if assignment.event in self._assigned_events:
            return False
        return self.is_feasible(assignment)

    def is_event_assigned(self, event: int) -> bool:
        return event in self._assigned_events

    def remaining_resources(self, interval: int) -> float:
        """Capacity left at ``interval``."""
        return self._instance.theta - self._resources_used.get(interval, 0.0)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def apply(self, assignment: Assignment) -> None:
        """Record an accepted assignment; raises if it is not valid."""
        if not self.is_valid(assignment):
            raise InfeasibleAssignmentError(
                f"{assignment} is not valid: "
                + explain_infeasibility(self._instance, self, assignment)
            )
        event = self._instance.events[assignment.event]
        interval = assignment.interval
        self._locations_used.setdefault(interval, set()).add(event.location)
        self._resources_used[interval] = (
            self._resources_used.get(interval, 0.0) + event.required_resources
        )
        self._assigned_events.add(assignment.event)

    def unapply(self, assignment: Assignment) -> None:
        """Undo a previously applied assignment."""
        if assignment.event not in self._assigned_events:
            raise InfeasibleAssignmentError(f"{assignment} was never applied")
        event = self._instance.events[assignment.event]
        interval = assignment.interval
        self._locations_used[interval].discard(event.location)
        self._resources_used[interval] -= event.required_resources
        self._assigned_events.discard(assignment.event)

    # ------------------------------------------------------------------
    # snapshots (checkpoint/recovery)
    # ------------------------------------------------------------------
    def export_state(self) -> dict[str, list]:
        """JSON-ready snapshot of the tracker's accumulated state.

        The per-interval resource sums are floats accumulated in
        apply/unapply order; rebuilding them from the schedule lands
        within an ulp of the live values, which can flip a feasibility
        probe right at the capacity boundary.  The snapshot preserves
        the exact bits.
        """
        return {
            "resources": [
                [interval, used]
                for interval, used in sorted(self._resources_used.items())
            ],
            "locations": [
                [interval, sorted(locations)]
                for interval, locations in sorted(self._locations_used.items())
            ],
            "events": sorted(self._assigned_events),
        }

    def restore_state(self, state: dict[str, list]) -> None:
        """Adopt a snapshot produced by :meth:`export_state`."""
        self._resources_used = {
            int(interval): float(used) for interval, used in state["resources"]
        }
        self._locations_used = {
            int(interval): set(locations)
            for interval, locations in state["locations"]
        }
        self._assigned_events = set(state["events"])


def is_schedule_feasible(instance: SESInstance, schedule: Schedule) -> bool:
    """One-shot check of the paper's two feasibility constraints."""
    for interval in schedule.used_intervals():
        events = schedule.events_at(interval)
        locations = [instance.events[e].location for e in events]
        if len(locations) != len(set(locations)):
            return False
        load = sum(instance.events[e].required_resources for e in events)
        if load > instance.theta + _RESOURCE_EPS:
            return False
    return True


def explain_infeasibility(
    instance: SESInstance,
    checker: FeasibilityChecker,
    assignment: Assignment,
) -> str:
    """Human-readable reason an assignment is rejected (for error messages)."""
    reasons = []
    if checker.is_event_assigned(assignment.event):
        reasons.append(f"event {assignment.event} is already scheduled")
    event = instance.events[assignment.event]
    used = checker._locations_used.get(assignment.interval, set())
    if event.location in used:
        reasons.append(
            f"location {event.location} is already occupied at interval "
            f"{assignment.interval}"
        )
    remaining = checker.remaining_resources(assignment.interval)
    if event.required_resources > remaining + _RESOURCE_EPS:
        reasons.append(
            f"requires {event.required_resources} resources but only "
            f"{remaining:.6g} remain at interval {assignment.interval}"
        )
    return "; ".join(reasons) if reasons else "assignment is actually valid"
