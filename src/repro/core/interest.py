"""The interest function ``mu : U x (E u C) -> [0, 1]`` (paper Section II).

The paper models a user's affinity for both candidate and competing events
with one function ``mu``.  We store it as two dense ``float64`` matrices —
``candidate`` of shape ``(n_users, n_events)`` and ``competing`` of shape
``(n_users, n_competing)`` — because every kernel in the library consumes
whole user-columns at once (Eq. 1's denominator sums ``mu`` over all events
sharing an interval).

Constructors cover the three ways interest arises in practice:

* :meth:`InterestMatrix.from_arrays` — you already have the numbers;
* :meth:`InterestMatrix.from_function` — a callable ``mu(user, event)``;
* :meth:`InterestMatrix.from_sparse` — ``{(user, event): value}`` dicts with
  an implicit zero default, the natural shape of EBSN-mined affinities.

The EBSN pipeline (``repro.ebsn.jaccard``) produces these matrices from tag
sets via Jaccard similarity, exactly as the paper's Section IV.A prescribes.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass

import numpy as np

from repro.core.errors import InstanceValidationError
from repro.utils.validation import check_probability_matrix

__all__ = ["InterestMatrix"]


@dataclass(frozen=True)
class InterestMatrix:
    """Dense storage of ``mu`` over candidate and competing events.

    Instances are immutable; the arrays are set non-writeable so a matrix
    can safely be shared between engines and schedules.
    """

    candidate: np.ndarray
    competing: np.ndarray

    def __post_init__(self) -> None:
        candidate = check_probability_matrix(self.candidate, "candidate interest")
        competing = check_probability_matrix(self.competing, "competing interest")
        if candidate.ndim != 2:
            raise InstanceValidationError(
                f"candidate interest must be 2-D, got shape {candidate.shape}"
            )
        if competing.ndim != 2:
            raise InstanceValidationError(
                f"competing interest must be 2-D, got shape {competing.shape}"
            )
        if competing.shape[0] != candidate.shape[0]:
            raise InstanceValidationError(
                "candidate and competing interest must agree on the user axis: "
                f"{candidate.shape[0]} vs {competing.shape[0]}"
            )
        candidate = np.ascontiguousarray(candidate)
        competing = np.ascontiguousarray(competing)
        candidate.setflags(write=False)
        competing.setflags(write=False)
        object.__setattr__(self, "candidate", candidate)
        object.__setattr__(self, "competing", competing)

    # ------------------------------------------------------------------
    # shape accessors
    # ------------------------------------------------------------------
    @property
    def n_users(self) -> int:
        return self.candidate.shape[0]

    @property
    def n_events(self) -> int:
        return self.candidate.shape[1]

    @property
    def n_competing(self) -> int:
        return self.competing.shape[1]

    # ------------------------------------------------------------------
    # element accessors
    # ------------------------------------------------------------------
    def mu_event(self, user: int, event: int) -> float:
        """``mu(u, e)`` for a candidate event."""
        return float(self.candidate[user, event])

    def mu_competing(self, user: int, competing: int) -> float:
        """``mu(u, c)`` for a competing event."""
        return float(self.competing[user, competing])

    def event_column(self, event: int) -> np.ndarray:
        """All users' interest in candidate ``event`` (read-only view)."""
        return self.candidate[:, event]

    def competing_column(self, competing: int) -> np.ndarray:
        """All users' interest in competing event ``competing``."""
        return self.competing[:, competing]

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_arrays(
        cls,
        candidate: np.ndarray,
        competing: np.ndarray | None = None,
    ) -> "InterestMatrix":
        """Build from ready-made arrays; ``competing=None`` means no rivals."""
        candidate = np.asarray(candidate, dtype=float)
        if competing is None:
            competing = np.zeros((candidate.shape[0], 0))
        return cls(candidate=candidate, competing=np.asarray(competing, dtype=float))

    @classmethod
    def from_function(
        cls,
        n_users: int,
        n_events: int,
        n_competing: int,
        event_interest: Callable[[int, int], float],
        competing_interest: Callable[[int, int], float] | None = None,
    ) -> "InterestMatrix":
        """Materialize ``mu`` by evaluating callables over every pair."""
        candidate = np.empty((n_users, n_events))
        for user in range(n_users):
            for event in range(n_events):
                candidate[user, event] = event_interest(user, event)
        competing = np.zeros((n_users, n_competing))
        if competing_interest is not None:
            for user in range(n_users):
                for rival in range(n_competing):
                    competing[user, rival] = competing_interest(user, rival)
        return cls(candidate=candidate, competing=competing)

    @classmethod
    def from_sparse(
        cls,
        n_users: int,
        n_events: int,
        n_competing: int,
        event_entries: Mapping[tuple[int, int], float],
        competing_entries: Mapping[tuple[int, int], float] | None = None,
    ) -> "InterestMatrix":
        """Build from ``{(user, event): mu}`` mappings; absent pairs are 0."""
        candidate = np.zeros((n_users, n_events))
        for (user, event), value in event_entries.items():
            candidate[user, event] = value
        competing = np.zeros((n_users, n_competing))
        for (user, rival), value in (competing_entries or {}).items():
            competing[user, rival] = value
        return cls(candidate=candidate, competing=competing)

    # ------------------------------------------------------------------
    # derived statistics (used by reports and calibration)
    # ------------------------------------------------------------------
    def sparsity(self) -> float:
        """Fraction of exactly-zero candidate-interest entries."""
        if self.candidate.size == 0:
            return 1.0
        return float(np.count_nonzero(self.candidate == 0.0) / self.candidate.size)

    def mean_positive_interest(self) -> float:
        """Mean of the strictly positive candidate-interest values (0 if none)."""
        positive = self.candidate[self.candidate > 0]
        return float(positive.mean()) if positive.size else 0.0
