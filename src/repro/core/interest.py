"""The interest function ``mu : U x (E u C) -> [0, 1]`` (paper Section II).

The paper models a user's affinity for both candidate and competing events
with one function ``mu``.  We store it as two matrices — ``candidate`` of
shape ``(n_users, n_events)`` and ``competing`` of shape
``(n_users, n_competing)`` — behind one of two interchangeable *backends*:

* ``"dense"`` — contiguous ``float64`` numpy arrays.  The right choice for
  small instances and for workloads where most pairs carry interest.
* ``"sparse"`` — scipy CSC matrices holding only the nonzero entries.
  Jaccard-mined Meetup interest is overwhelmingly sparse (a user shares
  tags with a tiny fraction of 16K events), so CSC storage is what lets
  the scoring stack reach full Meetup scale without ``O(|U| * |E|)``
  memory.  Requires scipy (the ``sparse`` extra); everything else in the
  library runs on numpy alone.

Both backends answer the same accessor protocol, which is all the engines
consume:

* **column gather** — :meth:`InterestMatrix.event_column_entries` /
  :meth:`~InterestMatrix.competing_column_entries` return a column's
  nonzero ``(rows, values)`` pair;
* **per-interval mass accumulation** —
  :meth:`~InterestMatrix.competing_mass_entries` sums a set of competing
  columns into one sparse vector (``K_t`` of Eq. 1);
* **masked ratio reduction** — :func:`masked_ratio` implements the
  ``0 / 0 = 0`` divide every equation needs.

Constructors cover the ways interest arises in practice:

* :meth:`InterestMatrix.from_arrays` — you already have the numbers;
* :meth:`InterestMatrix.from_function` — a callable ``mu(user, event)``;
* :meth:`InterestMatrix.from_sparse` — ``{(user, event): value}`` dicts with
  an implicit zero default, the natural shape of EBSN-mined affinities;
* :meth:`InterestMatrix.from_scipy` — ready-made scipy sparse matrices
  (what :func:`repro.ebsn.jaccard.jaccard_matrix_sparse` produces).

The EBSN pipeline (``repro.ebsn.jaccard``) produces these matrices from tag
sets via Jaccard similarity, exactly as the paper's Section IV.A prescribes;
with ``interest_backend="sparse"`` the pipeline never materializes a dense
``(users, events)`` array at any point.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from typing import Any

import numpy as np

from repro.core.errors import InstanceValidationError
from repro.utils.validation import check_probability_matrix

try:  # scipy is an optional dependency (the "sparse" extra)
    from scipy import sparse as _sp
except ImportError:  # pragma: no cover - exercised only without scipy
    _sp = None

__all__ = [
    "InterestMatrix",
    "INTEREST_BACKENDS",
    "masked_ratio",
    "merge_entries",
    "slice_entries",
]

#: Supported storage backends.
INTEREST_BACKENDS = ("dense", "sparse")

_EMPTY_ROWS = np.zeros(0, dtype=np.intp)
_EMPTY_VALUES = np.zeros(0)


def _require_scipy() -> None:
    if _sp is None:  # pragma: no cover - exercised only without scipy
        raise ImportError(
            "the 'sparse' interest backend requires scipy; install the "
            "'sparse' extra (pip install ses-repro[sparse]) or use "
            "backend='dense'"
        )


def masked_ratio(numerator: np.ndarray, denominator: np.ndarray) -> np.ndarray:
    """Elementwise ``numerator / denominator`` with the ``0 / 0 = 0`` rule.

    The shared reduction of Eq. 1–4: wherever the denominator is zero the
    numerator is necessarily zero too (all masses are non-negative), and the
    paper defines the ratio as 0 there.
    """
    return np.divide(
        numerator,
        denominator,
        out=np.zeros_like(numerator, dtype=float),
        where=denominator > 0.0,
    )


def merge_entries(
    rows: np.ndarray, values: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Reduce duplicate rows of a sparse-vector entry list by summation.

    Returns sorted unique rows with their summed values, explicit zeros
    dropped — the canonical form shared by the sparse engine's mass
    vectors and the serializer.
    """
    if rows.size == 0:
        return _EMPTY_ROWS, _EMPTY_VALUES
    unique, inverse = np.unique(rows, return_inverse=True)
    summed = np.zeros(unique.size)
    np.add.at(summed, inverse, values)
    keep = summed != 0.0
    if keep.all():
        return unique.astype(np.intp, copy=False), summed
    return unique[keep].astype(np.intp, copy=False), summed[keep]


def slice_entries(
    rows: np.ndarray, values: np.ndarray, lo: int, hi: int
) -> tuple[np.ndarray, np.ndarray]:
    """Restrict a sorted sparse-vector entry list to the row window ``[lo, hi)``.

    Rows come back *local* to the window (shifted by ``-lo``) — the gather
    primitive behind user-axis sharding: a global column's entries localize
    to each shard's block with two binary searches and no copy of ``values``
    beyond the window itself.
    """
    start, stop = np.searchsorted(rows, (lo, hi), side="left")
    if start == stop:
        return _EMPTY_ROWS, _EMPTY_VALUES
    local = rows[start:stop].astype(np.intp, copy=True)
    local -= lo
    return local, values[start:stop]


def _validate_sparse_matrix(matrix: Any, name: str) -> Any:
    """Canonicalize a scipy matrix to CSC and range-check its entries."""
    _require_scipy()
    csc = _sp.csc_matrix(matrix, copy=True)
    csc.sum_duplicates()
    csc.eliminate_zeros()
    csc.sort_indices()
    data = csc.data
    if np.isnan(data).any():
        raise ValueError(f"{name} contains NaN entries")
    if data.size and (data.min() < 0.0 or data.max() > 1.0):
        raise ValueError(
            f"{name} entries must lie in [0, 1]; observed range "
            f"[{data.min()}, {data.max()}]"
        )
    data.setflags(write=False)
    return csc


class InterestMatrix:
    """Storage of ``mu`` over candidate and competing events.

    Instances are immutable; dense arrays are set non-writeable and sparse
    data buffers likewise, so a matrix can safely be shared between
    engines and schedules.

    Parameters
    ----------
    candidate, competing:
        numpy arrays or scipy sparse matrices of shapes
        ``(n_users, n_events)`` / ``(n_users, n_competing)``.
    backend:
        ``"dense"`` or ``"sparse"``; inputs are converted to the requested
        storage.  Scipy inputs default the backend to ``"sparse"``.
    """

    __slots__ = ("_backend", "_candidate", "_competing")

    def __init__(
        self, candidate: Any, competing: Any, backend: str | None = None
    ) -> None:
        if backend is None:
            backend = (
                "sparse"
                if _sp is not None
                and (_sp.issparse(candidate) or _sp.issparse(competing))
                else "dense"
            )
        if backend not in INTEREST_BACKENDS:
            raise ValueError(
                f"unknown interest backend {backend!r}; "
                f"choose from {INTEREST_BACKENDS}"
            )

        if backend == "sparse":
            candidate = _validate_sparse_matrix(candidate, "candidate interest")
            competing = _validate_sparse_matrix(competing, "competing interest")
        else:
            if _sp is not None and _sp.issparse(candidate):
                candidate = candidate.toarray()
            if _sp is not None and _sp.issparse(competing):
                competing = competing.toarray()
            candidate = check_probability_matrix(candidate, "candidate interest")
            competing = check_probability_matrix(competing, "competing interest")
            if candidate.ndim != 2:
                raise InstanceValidationError(
                    f"candidate interest must be 2-D, got shape {candidate.shape}"
                )
            if competing.ndim != 2:
                raise InstanceValidationError(
                    f"competing interest must be 2-D, got shape {competing.shape}"
                )
            candidate = np.ascontiguousarray(candidate)
            competing = np.ascontiguousarray(competing)
            candidate.setflags(write=False)
            competing.setflags(write=False)

        if competing.shape[0] != candidate.shape[0]:
            raise InstanceValidationError(
                "candidate and competing interest must agree on the user axis: "
                f"{candidate.shape[0]} vs {competing.shape[0]}"
            )
        self._backend = backend
        self._candidate = candidate
        self._competing = competing

    # ------------------------------------------------------------------
    # backend + shape accessors
    # ------------------------------------------------------------------
    @property
    def backend(self) -> str:
        """``"dense"`` or ``"sparse"`` — how ``mu`` is stored."""
        return self._backend

    @property
    def candidate(self) -> np.ndarray:
        """Candidate interest as a dense read-only array.

        For the sparse backend this **materializes** a fresh
        ``(n_users, n_events)`` array on every call — an escape hatch for
        dense-only consumers, not something to call in a hot loop.
        """
        if self._backend == "dense":
            return self._candidate
        dense = self._candidate.toarray()
        dense.setflags(write=False)
        return dense

    @property
    def competing(self) -> np.ndarray:
        """Competing interest as a dense read-only array (see :attr:`candidate`)."""
        if self._backend == "dense":
            return self._competing
        dense = self._competing.toarray()
        dense.setflags(write=False)
        return dense

    @property
    def candidate_sparse(self) -> Any:
        """Candidate interest as a canonical scipy CSC matrix."""
        if self._backend == "sparse":
            return self._candidate
        _require_scipy()
        return _sp.csc_matrix(self._candidate)

    @property
    def competing_sparse(self) -> Any:
        """Competing interest as a canonical scipy CSC matrix."""
        if self._backend == "sparse":
            return self._competing
        _require_scipy()
        return _sp.csc_matrix(self._competing)

    @property
    def n_users(self) -> int:
        return self._candidate.shape[0]

    @property
    def n_events(self) -> int:
        return self._candidate.shape[1]

    @property
    def n_competing(self) -> int:
        return self._competing.shape[1]

    # ------------------------------------------------------------------
    # element accessors
    # ------------------------------------------------------------------
    def mu_event(self, user: int, event: int) -> float:
        """``mu(u, e)`` for a candidate event."""
        return float(self._candidate[user, event])

    def mu_competing(self, user: int, competing: int) -> float:
        """``mu(u, c)`` for a competing event."""
        return float(self._competing[user, competing])

    def event_column(self, event: int) -> np.ndarray:
        """All users' interest in candidate ``event`` as a dense vector."""
        return self._dense_column(self._candidate, event)

    def competing_column(self, competing: int) -> np.ndarray:
        """All users' interest in competing event ``competing``."""
        return self._dense_column(self._competing, competing)

    def _dense_column(self, matrix: Any, column: int) -> np.ndarray:
        if self._backend == "dense":
            return matrix[:, column]
        out = np.zeros(matrix.shape[0])
        start, stop = matrix.indptr[column], matrix.indptr[column + 1]
        out[matrix.indices[start:stop]] = matrix.data[start:stop]
        return out

    # ------------------------------------------------------------------
    # accessor protocol: column gather + mass accumulation
    # ------------------------------------------------------------------
    def event_column_entries(self, event: int) -> tuple[np.ndarray, np.ndarray]:
        """Nonzero ``(rows, values)`` of one candidate column (sorted rows)."""
        return self._column_entries(self._candidate, event)

    def competing_column_entries(
        self, competing: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Nonzero ``(rows, values)`` of one competing column (sorted rows)."""
        return self._column_entries(self._competing, competing)

    def _column_entries(
        self, matrix: Any, column: int
    ) -> tuple[np.ndarray, np.ndarray]:
        if self._backend == "sparse":
            start, stop = matrix.indptr[column], matrix.indptr[column + 1]
            return (
                matrix.indices[start:stop].astype(np.intp, copy=False),
                matrix.data[start:stop],
            )
        dense = matrix[:, column]
        rows = np.flatnonzero(dense)
        return rows.astype(np.intp, copy=False), dense[rows]

    def competing_mass_entries(
        self, rivals: Sequence[int]
    ) -> tuple[np.ndarray, np.ndarray]:
        """``K_t`` as a sparse vector: sum of the given competing columns.

        This is the per-interval mass accumulation of Eq. 1's denominator,
        returned as canonical sorted ``(rows, values)`` with zeros dropped.
        Values are accumulated in ``rivals`` order per user, matching the
        reference :func:`repro.core.attendance.luce_denominator` loop.
        """
        if not len(rivals):
            return _EMPTY_ROWS, _EMPTY_VALUES
        parts = [self.competing_column_entries(rival) for rival in rivals]
        rows = np.concatenate([rows for rows, _ in parts])
        values = np.concatenate([values for _, values in parts])
        return merge_entries(rows, values)

    # ------------------------------------------------------------------
    # canonical export (serialization)
    # ------------------------------------------------------------------
    def candidate_coo(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Canonical ``(rows, cols, values)`` of the candidate matrix.

        Entries are emitted column-major (CSC order: sorted by column, then
        row) with explicit zeros dropped, so two equal matrices always
        serialize identically regardless of construction history.
        """
        return self._coo(self.candidate_sparse)

    def competing_coo(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Canonical ``(rows, cols, values)`` of the competing matrix."""
        return self._coo(self.competing_sparse)

    @staticmethod
    def _coo(csc: Any) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        coo = csc.tocoo()
        return (
            coo.row.astype(np.intp, copy=False),
            coo.col.astype(np.intp, copy=False),
            np.asarray(coo.data, dtype=float),
        )

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_arrays(
        cls,
        candidate: np.ndarray,
        competing: np.ndarray | None = None,
        backend: str | None = None,
    ) -> "InterestMatrix":
        """Build from ready-made arrays; ``competing=None`` means no rivals.

        ``backend=None`` auto-detects: scipy sparse inputs stay sparse,
        numpy arrays stay dense.
        """
        if _sp is None or not _sp.issparse(candidate):
            candidate = np.asarray(candidate, dtype=float)
        if competing is None:
            competing = np.zeros((candidate.shape[0], 0))
        elif _sp is None or not _sp.issparse(competing):
            competing = np.asarray(competing, dtype=float)
        return cls(candidate=candidate, competing=competing, backend=backend)

    @classmethod
    def from_scipy(
        cls,
        candidate: Any,
        competing: Any = None,
    ) -> "InterestMatrix":
        """Build a sparse-backed matrix from scipy sparse inputs."""
        _require_scipy()
        if competing is None:
            competing = _sp.csc_matrix((candidate.shape[0], 0))
        return cls(candidate=candidate, competing=competing, backend="sparse")

    @classmethod
    def from_function(
        cls,
        n_users: int,
        n_events: int,
        n_competing: int,
        event_interest: Callable[[int, int], float],
        competing_interest: Callable[[int, int], float] | None = None,
        backend: str = "dense",
    ) -> "InterestMatrix":
        """Materialize ``mu`` by evaluating callables over every pair."""
        candidate = np.empty((n_users, n_events))
        for user in range(n_users):
            for event in range(n_events):
                candidate[user, event] = event_interest(user, event)
        competing = np.zeros((n_users, n_competing))
        if competing_interest is not None:
            for user in range(n_users):
                for rival in range(n_competing):
                    competing[user, rival] = competing_interest(user, rival)
        return cls(candidate=candidate, competing=competing, backend=backend)

    @classmethod
    def from_sparse(
        cls,
        n_users: int,
        n_events: int,
        n_competing: int,
        event_entries: Mapping[tuple[int, int], float],
        competing_entries: Mapping[tuple[int, int], float] | None = None,
        backend: str = "dense",
    ) -> "InterestMatrix":
        """Build from ``{(user, event): mu}`` mappings; absent pairs are 0.

        With ``backend="sparse"`` the entries go straight into CSC storage
        and no dense ``(n_users, n_events)`` array ever exists.
        """
        if backend == "sparse":
            _require_scipy()
            candidate = cls._coo_from_entries(event_entries, (n_users, n_events))
            competing = cls._coo_from_entries(
                competing_entries or {}, (n_users, n_competing)
            )
            return cls(candidate=candidate, competing=competing, backend="sparse")
        candidate = np.zeros((n_users, n_events))
        for (user, event), value in event_entries.items():
            candidate[user, event] = value
        competing = np.zeros((n_users, n_competing))
        for (user, rival), value in (competing_entries or {}).items():
            competing[user, rival] = value
        return cls(candidate=candidate, competing=competing, backend=backend)

    @staticmethod
    def _coo_from_entries(
        entries: Mapping[tuple[int, int], float], shape: tuple[int, int]
    ) -> Any:
        if not entries:
            return _sp.csc_matrix(shape)
        rows = np.fromiter((pair[0] for pair in entries), dtype=np.intp)
        cols = np.fromiter((pair[1] for pair in entries), dtype=np.intp)
        values = np.fromiter(entries.values(), dtype=float)
        return _sp.coo_matrix((values, (rows, cols)), shape=shape)

    # ------------------------------------------------------------------
    # column edits (streaming change ops) — backend preserving
    # ------------------------------------------------------------------
    def _as_column(self, column: Any) -> "np.ndarray":
        column = np.asarray(column, dtype=float)
        if column.shape != (self.n_users,):
            raise ValueError(
                f"interest column must have shape ({self.n_users},), "
                f"got {column.shape}"
            )
        return column

    def _stack(self, matrix: Any, column: np.ndarray) -> Any:
        if self._backend == "sparse":
            return _sp.hstack(
                [matrix, _sp.csc_matrix(column.reshape(-1, 1))], format="csc"
            )
        return np.column_stack([matrix, column])

    def with_event_column(self, column: Any) -> "InterestMatrix":
        """A copy with ``column`` appended as a new candidate event.

        The storage backend is preserved: a sparse matrix stays CSC (the
        column is appended in O(nnz)), so streaming arrivals never silently
        densify a Meetup-scale instance.
        """
        column = self._as_column(column)
        return InterestMatrix(
            candidate=self._stack(self._candidate, column),
            competing=self._competing,
            backend=self._backend,
        )

    def without_event_column(self, event: int) -> "InterestMatrix":
        """A copy with candidate ``event``'s column removed (backend kept)."""
        if not 0 <= event < self.n_events:
            raise ValueError(
                f"cannot drop event column {event}; matrix has "
                f"{self.n_events} events"
            )
        keep = [e for e in range(self.n_events) if e != event]
        return InterestMatrix(
            candidate=self._candidate[:, keep],
            competing=self._competing,
            backend=self._backend,
        )

    def with_replaced_event_column(
        self, event: int, column: Any
    ) -> "InterestMatrix":
        """A copy with candidate ``event``'s column replaced (backend kept)."""
        if not 0 <= event < self.n_events:
            raise ValueError(
                f"cannot replace event column {event}; matrix has "
                f"{self.n_events} events"
            )
        column = self._as_column(column)
        if self._backend == "sparse":
            parts = [
                self._candidate[:, :event],
                _sp.csc_matrix(column.reshape(-1, 1)),
                self._candidate[:, event + 1 :],
            ]
            candidate = _sp.hstack(parts, format="csc")
        else:
            candidate = np.array(self._candidate)
            candidate[:, event] = column
        return InterestMatrix(
            candidate=candidate, competing=self._competing, backend=self._backend
        )

    def with_competing_column(self, column: Any) -> "InterestMatrix":
        """A copy with ``column`` appended as a new competing event."""
        column = self._as_column(column)
        return InterestMatrix(
            candidate=self._candidate,
            competing=self._stack(self._competing, column),
            backend=self._backend,
        )

    # ------------------------------------------------------------------
    # backend conversion / restriction
    # ------------------------------------------------------------------
    def to_backend(self, backend: str) -> "InterestMatrix":
        """This matrix with ``backend`` storage (``self`` if already there)."""
        if backend not in INTEREST_BACKENDS:
            raise ValueError(
                f"unknown interest backend {backend!r}; "
                f"choose from {INTEREST_BACKENDS}"
            )
        if backend == self._backend:
            return self
        if backend == "sparse":
            return InterestMatrix.from_scipy(
                self.candidate_sparse, self.competing_sparse
            )
        return InterestMatrix(
            candidate=self.candidate, competing=self.competing, backend="dense"
        )

    def restrict_users(self, n_users: int) -> "InterestMatrix":
        """The first ``n_users`` rows of both matrices, backend preserved."""
        if not 0 <= n_users <= self.n_users:
            raise ValueError(
                f"cannot restrict to {n_users} users; matrix has {self.n_users}"
            )
        return InterestMatrix(
            candidate=self._candidate[:n_users],
            competing=self._competing[:n_users],
            backend=self._backend,
        )

    # ------------------------------------------------------------------
    # derived statistics (used by reports and calibration)
    # ------------------------------------------------------------------
    def nnz_candidate(self) -> int:
        """Number of stored nonzero candidate-interest entries."""
        if self._backend == "sparse":
            return int(self._candidate.nnz)
        return int(np.count_nonzero(self._candidate))

    def sparsity(self) -> float:
        """Fraction of exactly-zero candidate-interest entries."""
        size = self.n_users * self.n_events
        if size == 0:
            return 1.0
        return float((size - self.nnz_candidate()) / size)

    def mean_positive_interest(self) -> float:
        """Mean of the strictly positive candidate-interest values (0 if none)."""
        if self._backend == "sparse":
            positive = self._candidate.data[self._candidate.data > 0]
        else:
            positive = self._candidate[self._candidate > 0]
        return float(positive.mean()) if positive.size else 0.0

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"InterestMatrix(users={self.n_users}, events={self.n_events}, "
            f"competing={self.n_competing}, backend={self._backend!r})"
        )
