"""The social-activity probability ``sigma : U x T -> [0, 1]``.

``sigma[u, t]`` is the probability that user ``u`` engages in *some* social
activity during interval ``t`` (paper Section II).  It rescales the Luce
choice probability of Eq. 1: a user who never goes out on Tuesdays attends
no Tuesday event regardless of interest.

The paper's experiments draw ``sigma`` from a uniform distribution; the
"real" pipeline it describes — estimating ``sigma`` from per-interval
check-in counts — is implemented in :mod:`repro.ebsn.checkins` and feeds
:meth:`ActivityModel.from_checkin_rates`.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import InstanceValidationError
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_probability_matrix

__all__ = ["ActivityModel"]


class ActivityModel:
    """Immutable matrix wrapper for ``sigma`` of shape ``(n_users, n_intervals)``."""

    def __init__(self, probabilities: np.ndarray) -> None:
        matrix = check_probability_matrix(probabilities, "sigma")
        if matrix.ndim != 2:
            raise InstanceValidationError(
                f"sigma must be 2-D (users x intervals), got shape {matrix.shape}"
            )
        matrix = np.ascontiguousarray(matrix)
        matrix.setflags(write=False)
        self._matrix = matrix

    # ------------------------------------------------------------------
    @property
    def matrix(self) -> np.ndarray:
        """The read-only ``(n_users, n_intervals)`` probability matrix."""
        return self._matrix

    @property
    def n_users(self) -> int:
        return self._matrix.shape[0]

    @property
    def n_intervals(self) -> int:
        return self._matrix.shape[1]

    def sigma(self, user: int, interval: int) -> float:
        """``sigma[u, t]`` as a float."""
        return float(self._matrix[user, interval])

    def interval_column(self, interval: int) -> np.ndarray:
        """All users' activity probability at ``interval`` (read-only view)."""
        return self._matrix[:, interval]

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def constant(
        cls, n_users: int, n_intervals: int, value: float = 1.0
    ) -> "ActivityModel":
        """Every user equally active everywhere — the neutral model."""
        return cls(np.full((n_users, n_intervals), float(value)))

    @classmethod
    def uniform_random(
        cls,
        n_users: int,
        n_intervals: int,
        seed: int | np.random.Generator | None = None,
        low: float = 0.0,
        high: float = 1.0,
    ) -> "ActivityModel":
        """``sigma ~ U[low, high]`` i.i.d. — the paper's experimental choice."""
        if not 0.0 <= low <= high <= 1.0:
            raise ValueError(f"need 0 <= low <= high <= 1, got [{low}, {high}]")
        rng = ensure_rng(seed)
        return cls(rng.uniform(low, high, size=(n_users, n_intervals)))

    @classmethod
    def from_checkin_rates(
        cls,
        checkin_counts: np.ndarray,
        smoothing: float = 1.0,
        max_observations: float | None = None,
    ) -> "ActivityModel":
        """Estimate ``sigma`` from historical per-interval check-in counts.

        ``checkin_counts[u, t]`` is how many times user ``u`` checked in
        during (recurring) interval ``t`` across the observation window.
        The estimate is an additively smoothed frequency::

            sigma[u, t] = (count[u, t] + smoothing) / (denominator + 2 * smoothing)

        where ``denominator`` is ``max_observations`` (e.g. number of weeks
        observed) or, if omitted, the per-user maximum count — so the most
        active slot of each user approaches probability 1.
        """
        counts = np.asarray(checkin_counts, dtype=float)
        if counts.ndim != 2:
            raise InstanceValidationError(
                f"checkin_counts must be 2-D, got shape {counts.shape}"
            )
        if (counts < 0).any():
            raise InstanceValidationError("checkin_counts must be non-negative")
        if smoothing < 0:
            raise ValueError(f"smoothing must be non-negative, got {smoothing}")
        if max_observations is not None:
            denominator = np.full((counts.shape[0], 1), float(max_observations))
        else:
            denominator = counts.max(axis=1, keepdims=True)
        denominator = np.maximum(denominator, counts.max(initial=0.0))
        probabilities = (counts + smoothing) / (denominator + 2.0 * smoothing)
        return cls(np.clip(probabilities, 0.0, 1.0))
