"""Attendance probabilities — Eq. 1 and Eq. 2 of the paper.

Following Luce's choice axiom, a user splits their interval-``t`` activity
probability ``sigma[u, t]`` across *everything* happening at ``t``: the
competing events ``C_t`` and the organizer's own co-scheduled events
``E_t(S)``::

    rho(u, e, t | S) = sigma[u, t] * mu[u, e]
                       / ( sum_{c in C_t} mu[u, c] + sum_{p in E_t(S)} mu[u, p] )

with the convention ``0 / 0 = 0`` (a user with zero interest in everything
at ``t`` attends nothing).  The expected attendance of a scheduled event is
the sum of ``rho`` over users (Eq. 2).

These functions are the **reference semantics**: direct, loop-based
transliterations of the equations.  They are deliberately unoptimized — the
vectorized engine in :mod:`repro.core.engine` is cross-checked against them
in the test suite.
"""

from __future__ import annotations

from repro.core.errors import UnknownEntityError
from repro.core.instance import SESInstance
from repro.core.schedule import Schedule

__all__ = [
    "luce_denominator",
    "attendance_probability",
    "expected_attendance",
]


def luce_denominator(
    instance: SESInstance,
    schedule: Schedule,
    user: int,
    interval: int,
) -> float:
    """The shared denominator of Eq. 1 for ``user`` at ``interval``.

    Sums the user's interest over the competing events pinned to the
    interval and over every event the schedule places there.
    """
    total = 0.0
    for rival in instance.competing_by_interval[interval]:
        total += instance.interest.mu_competing(user, rival)
    for event in schedule.events_at(interval):
        total += instance.interest.mu_event(user, event)
    return total


def attendance_probability(
    instance: SESInstance,
    schedule: Schedule,
    user: int,
    event: int,
) -> float:
    """``rho(u, e, t_e(S) | S)`` — Eq. 1 — for a *scheduled* event.

    Raises :class:`UnknownEntityError` when ``event`` is not in ``E(S)``:
    the paper only defines ``rho`` for events the schedule actually places.
    """
    interval = schedule.interval_of(event)
    if interval is None:
        raise UnknownEntityError(
            f"event {event} is not scheduled; rho is defined only for "
            f"scheduled events (use scoring.assignment_score for hypotheticals)"
        )
    denominator = luce_denominator(instance, schedule, user, interval)
    if denominator == 0.0:
        return 0.0
    sigma = instance.activity.sigma(user, interval)
    mu = instance.interest.mu_event(user, event)
    return sigma * mu / denominator


def expected_attendance(
    instance: SESInstance,
    schedule: Schedule,
    event: int,
) -> float:
    """``omega(e, t_e(S) | S)`` — Eq. 2: expected head-count of ``event``."""
    return sum(
        attendance_probability(instance, schedule, user, event)
        for user in range(instance.n_users)
    )
