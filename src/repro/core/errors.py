"""Exception hierarchy for the SES library.

All library-specific failures derive from :class:`SESError` so callers can
catch one base class at an API boundary.
"""

from __future__ import annotations

__all__ = [
    "SESError",
    "InfeasibleAssignmentError",
    "DuplicateEventError",
    "UnknownEntityError",
    "InstanceValidationError",
    "ScheduleSizeError",
    "TraceError",
    "LockError",
    "SerializationError",
    "JournalError",
    "CheckpointError",
    "RecoveryError",
    "ShardWorkerError",
    "InjectedFault",
]


class SESError(Exception):
    """Base class for every error raised by the repro library."""


class InstanceValidationError(SESError):
    """A problem instance violates a structural requirement.

    Raised at :class:`~repro.core.instance.SESInstance` construction time,
    e.g. for interest values outside [0, 1] or mismatched array shapes.
    """


class InfeasibleAssignmentError(SESError):
    """An assignment violates the location or resources constraint."""


class DuplicateEventError(SESError):
    """An event was assigned twice within one schedule.

    The paper's definition of a schedule forbids two assignments referring
    to the same event.
    """


class UnknownEntityError(SESError):
    """An index referenced a user/event/interval that does not exist."""


class ScheduleSizeError(SESError):
    """A solver could not produce a feasible schedule of the requested size."""


class LockError(SESError):
    """An organizer lock set is malformed or cannot be honored.

    Raised by :class:`~repro.interactive.locks.LockSet` validation (an
    index out of range, an event pinned to two intervals, a pin that is
    also forbidden) and by solvers when the pinned assignments are not
    jointly feasible, when ``k`` is smaller than the number of pins, or
    when a caller-supplied schedule violates the locks it claims to honor.
    """


class TraceError(SESError):
    """A streaming change trace is not replayable.

    Raised by :class:`~repro.stream.trace.Trace` validation when an op
    references an event index that is not live at its replay position
    (a cancel/drift of an unknown id), duplicates a still-live named
    arrival, or shrinks the budget.  The message names the offending op
    index so broken traces are debuggable without replaying them.
    """


class SerializationError(SESError):
    """A persisted instance/schedule artifact is unreadable or incomplete.

    Raised by the loaders in :mod:`repro.data.serialization` when a
    sharded-instance directory is missing its manifest or references
    block files that do not exist — torn artifacts are named explicitly
    instead of surfacing as a raw :class:`FileNotFoundError` deep inside
    a block loop.
    """


class JournalError(SESError):
    """A :class:`~repro.resilience.journal.DeltaJournal` is corrupt.

    Torn *tails* (a crash mid-append) are not errors — they are truncated
    silently on open.  This is raised for damage recovery must not paper
    over: a bad header, an unsupported format tag, or a record that fails
    its CRC *before* later valid records (mid-file corruption).
    """


class CheckpointError(SESError):
    """A checkpoint file could not be written or decoded."""


class RecoveryError(SESError):
    """Crash recovery could not resume a durable session.

    Raised when no valid checkpoint survives, when the journal tail does
    not replay cleanly onto the checkpointed state, or when a resumed
    trace diverges from the ops the journal already recorded.
    """


class ShardWorkerError(SESError):
    """A shard worker failed (or died) executing one dispatched thunk.

    The message names the thunk index so a failing block is identifiable
    without re-running the fan-out; the original failure is chained as
    ``__cause__``.
    """


class InjectedFault(SESError):
    """A deterministic fault injected by a :class:`~repro.resilience.faults.FaultPlan`.

    Carries the injection ``site`` and fault ``kind`` so retry loops and
    tests can distinguish synthetic failures from real ones.
    """

    def __init__(self, site: str, kind: str) -> None:
        super().__init__(f"injected {kind} fault at {site}")
        self.site = site
        self.kind = kind

    def __reduce__(self) -> tuple:
        # default exception pickling replays args=(message,), which does
        # not match this two-argument constructor; needed when a fault
        # crosses a process-pool boundary
        return (InjectedFault, (self.site, self.kind))
