"""Exception hierarchy for the SES library.

All library-specific failures derive from :class:`SESError` so callers can
catch one base class at an API boundary.
"""

from __future__ import annotations

__all__ = [
    "SESError",
    "InfeasibleAssignmentError",
    "DuplicateEventError",
    "UnknownEntityError",
    "InstanceValidationError",
    "ScheduleSizeError",
    "TraceError",
    "LockError",
]


class SESError(Exception):
    """Base class for every error raised by the repro library."""


class InstanceValidationError(SESError):
    """A problem instance violates a structural requirement.

    Raised at :class:`~repro.core.instance.SESInstance` construction time,
    e.g. for interest values outside [0, 1] or mismatched array shapes.
    """


class InfeasibleAssignmentError(SESError):
    """An assignment violates the location or resources constraint."""


class DuplicateEventError(SESError):
    """An event was assigned twice within one schedule.

    The paper's definition of a schedule forbids two assignments referring
    to the same event.
    """


class UnknownEntityError(SESError):
    """An index referenced a user/event/interval that does not exist."""


class ScheduleSizeError(SESError):
    """A solver could not produce a feasible schedule of the requested size."""


class LockError(SESError):
    """An organizer lock set is malformed or cannot be honored.

    Raised by :class:`~repro.interactive.locks.LockSet` validation (an
    index out of range, an event pinned to two intervals, a pin that is
    also forbidden) and by solvers when the pinned assignments are not
    jointly feasible, when ``k`` is smaller than the number of pins, or
    when a caller-supplied schedule violates the locks it claims to honor.
    """


class TraceError(SESError):
    """A streaming change trace is not replayable.

    Raised by :class:`~repro.stream.trace.Trace` validation when an op
    references an event index that is not live at its replay position
    (a cancel/drift of an unknown id), duplicates a still-live named
    arrival, or shrinks the budget.  The message names the offending op
    index so broken traces are debuggable without replaying them.
    """
