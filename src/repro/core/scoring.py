"""Assignment scores — Eq. 4 — the marginal-gain oracle driving GRD.

The *score* of an assignment ``alpha_r^t`` against a schedule ``S`` (with
``r`` unscheduled) is the change in total utility from adding it::

    score(alpha_r^t | S) = sum_{e in E_t(S) + {r}} omega'(e, t)
                         - sum_{e in E_t(S)}       omega(e, t)

where ``omega'`` is the expected attendance *after* ``r`` joins the interval
(the denominator of Eq. 1 grows by ``mu[u, r]`` for every sibling event).
Only interval ``t`` is affected, so the score equals the global utility
delta ``Omega(S + alpha_r^t) - Omega(S)``.

Two provable facts shape the solvers (both are property-tested):

* **non-negativity** — per user the gain is ``f(M + m_r) - f(M)`` with
  ``f(M) = M / (K + M)`` increasing, so scores are never negative;
* **diminishing returns** — ``f`` is concave, so adding other events to the
  same interval can only *lower* the score of a pending assignment.  This
  monotone staleness is what makes the lazy-heap GRD variant exact.

:func:`assignment_score` is the loop-based reference implementation;
the vectorized equivalent lives in :class:`repro.core.engine.VectorizedEngine`.
"""

from __future__ import annotations

from repro.core.attendance import luce_denominator
from repro.core.errors import DuplicateEventError
from repro.core.instance import SESInstance
from repro.core.schedule import Assignment, Schedule

__all__ = ["assignment_score"]


def assignment_score(
    instance: SESInstance,
    schedule: Schedule,
    assignment: Assignment,
) -> float:
    """Eq. 4 — utility gain of adding ``assignment`` to ``schedule``.

    Raises :class:`DuplicateEventError` if the event is already scheduled
    (the paper defines the score only for ``r`` not in ``E(S)``).
    """
    event, interval = assignment.event, assignment.interval
    if schedule.contains_event(event):
        raise DuplicateEventError(
            f"event {event} is already scheduled; Eq. 4 requires r not in E(S)"
        )
    siblings = schedule.events_at(interval)
    new_column = instance.interest.event_column(event)

    score = 0.0
    for user in range(instance.n_users):
        old_denominator = luce_denominator(instance, schedule, user, interval)
        new_denominator = old_denominator + float(new_column[user])
        if new_denominator == 0.0:
            continue
        sigma = instance.activity.sigma(user, interval)

        # attendance of the siblings after r joins, minus before
        sibling_mass = sum(
            instance.interest.mu_event(user, sibling) for sibling in siblings
        )
        after = sigma * (sibling_mass + float(new_column[user])) / new_denominator
        before = 0.0
        if old_denominator > 0.0:
            before = sigma * sibling_mass / old_denominator
        score += after - before
    return score
