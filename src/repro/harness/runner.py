"""Sweep runner: materialize instances, run every method, collect rows.

This is the engine behind each Figure 1 panel: given a sweep (list of
``(x, config)``) and a set of solvers, it builds one instance per grid
point through a shared :class:`~repro.workloads.generator.WorkloadGenerator`
and records utility + wall-clock per method.

Method construction is deliberately a *factory* (name -> Scheduler) called
per grid point, so stateful solvers (RAND's generator, SA's temperature)
start fresh each time, with seeds derived from the runner's root seed.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.algorithms.base import ScheduleResult, Scheduler
from repro.algorithms.registry import solver_registry
from repro.core.engine import EngineSpec, resolve_engine_spec
from repro.core.instance import SESInstance
from repro.harness.results import SweepRow, SweepTable
from repro.utils.rng import SeedSequenceFactory
from repro.workloads.config import ExperimentConfig
from repro.workloads.generator import WorkloadGenerator

__all__ = ["PAPER_METHOD_NAMES", "paper_methods", "run_point", "run_sweep"]

MethodFactory = Callable[[], dict[str, Scheduler]]

#: Registry names of the paper's evaluation trio, in figure order.
PAPER_METHOD_NAMES: tuple[str, ...] = ("grd", "top", "rand")


def paper_methods(
    seed: int = 0,
    engine: EngineSpec | str | None = None,
    extras: Sequence[str] = (),
    *,
    engine_kind: str | None = None,
) -> dict[str, Scheduler]:
    """The paper's GRD/TOP/RAND trio, built from the solver registry.

    ``extras`` appends further registry names (e.g. ``("sa", "grasp")``)
    so sweeps can compare extension heuristics against the paper methods
    without hand-rolling another solver dict.  ``seed`` is applied to
    every solver registered as seeded.  ``engine_kind`` is the deprecated
    string form of ``engine``.
    """
    spec = resolve_engine_spec(engine, engine_kind, owner="paper_methods")
    methods: dict[str, Scheduler] = {}
    for name in (*PAPER_METHOD_NAMES, *extras):
        info = solver_registry.get(name)
        methods[info.display_name] = solver_registry.create(
            name, engine=spec, seed=seed if info.seeded else None
        )
    return methods


def run_point(
    instance: SESInstance,
    k: int,
    methods: dict[str, Scheduler],
) -> dict[str, ScheduleResult]:
    """Run every method on one instance; returns results keyed by name."""
    results: dict[str, ScheduleResult] = {}
    for name, solver in methods.items():
        results[name] = solver.solve(instance, k)
    return results


def run_sweep(
    sweep: Sequence[tuple[float, ExperimentConfig]],
    x_label: str,
    title: str = "",
    root_seed: int = 0,
    method_factory: MethodFactory | None = None,
    workload: WorkloadGenerator | None = None,
    progress: Callable[[str], None] | None = None,
    engine: EngineSpec | str | None = None,
    *,
    engine_kind: str | None = None,
) -> SweepTable:
    """Execute a sweep and return the populated table.

    Parameters
    ----------
    sweep:
        ``(x, config)`` pairs, e.g. from :func:`repro.workloads.sweep_k`.
    x_label, title:
        Axis/figure labels carried into reports.
    root_seed:
        Seeds the workload generator and the per-point method seeds.
    method_factory:
        Zero-argument callable producing fresh solvers per grid point;
        defaults to the paper's GRD/TOP/RAND trio.
    workload:
        Shared generator; a fresh one (seeded ``root_seed``) by default.
    progress:
        Optional callback receiving one line per completed grid point
        (the CLI passes ``print``).
    engine:
        :class:`EngineSpec` (or kind string) behind the default method
        trio; ignored when ``method_factory`` is given.  ``engine_kind``
        is the deprecated string-only spelling.
    """
    spec = resolve_engine_spec(engine, engine_kind, owner="run_sweep")
    table = SweepTable(x_label=x_label, title=title)
    workload = workload or WorkloadGenerator(root_seed=root_seed)
    seeds = SeedSequenceFactory(root_seed + 1)

    for x, config in sweep:
        instance = workload.build(config)
        point_seed = int(seeds.spawn().integers(2**31 - 1))
        methods = (
            method_factory()
            if method_factory
            else paper_methods(seed=point_seed, engine=spec)
        )
        for name, result in run_point(instance, config.k, methods).items():
            table.add(
                SweepRow(
                    x=float(x),
                    method=name,
                    utility=result.utility,
                    runtime_seconds=result.runtime_seconds,
                    achieved_k=result.achieved_k,
                    requested_k=result.requested_k,
                    extra={
                        key: float(value)
                        for key, value in result.stats.as_dict().items()
                    },
                )
            )
        if progress is not None:
            progress(f"{x_label}={x:g}: done ({instance.describe()})")
    return table
