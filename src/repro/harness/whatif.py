"""What-if analysis: how constraint knobs shape achievable attendance.

Capacity planning questions an organizer actually asks:

* "If I hire more staff per slot (raise theta), what do I gain?"
* "Is renting another stage worth it?"
* "How much attendance does each rival event cost me?"

Each sweep re-solves a *modified copy* of the instance with one knob
turned — the instance itself is immutable, so modifications go through
reconstruction, exactly like the incremental scheduler.  Results come
back as (knob value, utility) curves plus convenience marginals.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.algorithms.base import Scheduler
from repro.algorithms.greedy import GreedyScheduler
from repro.core.activity import ActivityModel
from repro.core.entities import CandidateEvent, Organizer
from repro.core.instance import SESInstance
from repro.core.interest import InterestMatrix

__all__ = ["WhatIfCurve", "sweep_theta", "sweep_locations", "competition_cost"]


@dataclass(frozen=True)
class WhatIfCurve:
    """A (knob value -> utility) curve from a what-if sweep."""

    knob: str
    values: tuple[float, ...]
    utilities: tuple[float, ...]

    def marginal(self) -> tuple[float, ...]:
        """Utility gained per knob step (first differences)."""
        return tuple(
            after - before
            for before, after in zip(self.utilities, self.utilities[1:])
        )

    def best(self) -> tuple[float, float]:
        """(knob value, utility) of the best point."""
        index = max(range(len(self.utilities)), key=self.utilities.__getitem__)
        return self.values[index], self.utilities[index]


def _with_organizer(instance: SESInstance, theta: float) -> SESInstance:
    return SESInstance(
        users=instance.users,
        intervals=instance.intervals,
        events=instance.events,
        competing=instance.competing,
        interest=instance.interest,
        activity=ActivityModel(instance.activity.matrix),
        organizer=Organizer(resources=theta, name=instance.organizer.name),
    )


def _with_locations(instance: SESInstance, n_locations: int) -> SESInstance:
    events = tuple(
        CandidateEvent(
            index=event.index,
            location=event.location % n_locations,
            required_resources=event.required_resources,
            name=event.name,
            tags=event.tags,
        )
        for event in instance.events
    )
    return SESInstance(
        users=instance.users,
        intervals=instance.intervals,
        events=events,
        competing=instance.competing,
        interest=instance.interest,
        activity=ActivityModel(instance.activity.matrix),
        organizer=instance.organizer,
    )


def _without_competing(instance: SESInstance, drop: int) -> SESInstance:
    from repro.core.entities import CompetingEvent

    keep = [c for c in range(instance.n_competing) if c != drop]
    competing = tuple(
        CompetingEvent(
            index=new_index,
            interval=instance.competing[old].interval,
            name=instance.competing[old].name,
            tags=instance.competing[old].tags,
        )
        for new_index, old in enumerate(keep)
    )
    interest = InterestMatrix.from_arrays(
        instance.interest.candidate,
        instance.interest.competing[:, keep],
    )
    return SESInstance(
        users=instance.users,
        intervals=instance.intervals,
        events=instance.events,
        competing=competing,
        interest=interest,
        activity=ActivityModel(instance.activity.matrix),
        organizer=instance.organizer,
    )


def sweep_theta(
    instance: SESInstance,
    k: int,
    thetas: Sequence[float],
    solver: Scheduler | None = None,
) -> WhatIfCurve:
    """Utility achievable at each staffing level.

    ``thetas`` must all be at least the largest single ``xi`` in the
    instance (otherwise some event could never be scheduled and instance
    validation rejects the copy).
    """
    if not thetas:
        raise ValueError("thetas must be non-empty")
    solver = solver or GreedyScheduler()
    max_xi = max(
        (event.required_resources for event in instance.events), default=0.0
    )
    utilities = []
    for theta in thetas:
        if theta < max_xi:
            raise ValueError(
                f"theta {theta} is below the largest required_resources "
                f"{max_xi}; that instance would be invalid"
            )
        utilities.append(solver.solve(_with_organizer(instance, theta), k).utility)
    return WhatIfCurve(
        knob="theta", values=tuple(thetas), utilities=tuple(utilities)
    )


def sweep_locations(
    instance: SESInstance,
    k: int,
    location_counts: Sequence[int],
    solver: Scheduler | None = None,
) -> WhatIfCurve:
    """Utility achievable as the venue budget varies.

    Events are folded onto ``n`` locations by ``location % n`` — the same
    construction the Section IV.A builder uses — so smaller counts mean
    strictly more conflicts.
    """
    if not location_counts:
        raise ValueError("location_counts must be non-empty")
    if any(count <= 0 for count in location_counts):
        raise ValueError(f"location counts must be positive: {location_counts}")
    solver = solver or GreedyScheduler()
    utilities = [
        solver.solve(_with_locations(instance, count), k).utility
        for count in location_counts
    ]
    return WhatIfCurve(
        knob="locations",
        values=tuple(float(count) for count in location_counts),
        utilities=tuple(utilities),
    )


def competition_cost(
    instance: SESInstance,
    k: int,
    competing_index: int,
    solver: Scheduler | None = None,
) -> float:
    """Attendance recovered if one competing event vanished.

    Computed as ``utility(without rival) - utility(with rival)``; >= 0 up
    to solver noise, since removing competition only shrinks Luce
    denominators.
    """
    if not 0 <= competing_index < instance.n_competing:
        raise IndexError(
            f"competing_index {competing_index} out of range "
            f"[0, {instance.n_competing})"
        )
    solver = solver or GreedyScheduler()
    with_rival = solver.solve(instance, k).utility
    without_rival = solver.solve(
        _without_competing(instance, competing_index), k
    ).utility
    return without_rival - with_rival
