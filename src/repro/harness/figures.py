"""One-call regeneration of each Figure-1 panel.

``generate_figure("1a")`` runs the exact sweep behind the paper's panel
and returns the populated :class:`~repro.harness.results.SweepTable`; the
CLI, the EXPERIMENTS.md tables and user notebooks all share this single
definition, so the panels cannot drift apart between entry points.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.core.engine import EngineSpec, resolve_engine_spec
from repro.harness.results import SweepTable
from repro.harness.runner import run_sweep
from repro.workloads.config import ExperimentConfig
from repro.workloads.sweeps import sweep_intervals, sweep_k

__all__ = ["FIGURE_SPECS", "generate_figure", "figure_value_axis"]

#: panel -> (x label, value axis, title)
FIGURE_SPECS: dict[str, tuple[str, str, str]] = {
    "1a": ("k", "utility", "Fig 1a: utility vs k"),
    "1b": ("k", "time", "Fig 1b: time vs k"),
    "1c": ("|T|", "utility", "Fig 1c: utility vs |T|"),
    "1d": ("|T|", "time", "Fig 1d: time vs |T|"),
}

#: the paper's grids
FULL_K_GRID = (100, 200, 300, 400, 500)
QUICK_K_GRID = (20, 40, 60)
QUICK_INTERVAL_FACTORS = (0.5, 1.5, 3.0)


def figure_value_axis(panel: str) -> str:
    """``"utility"`` or ``"time"`` — which axis the panel plots."""
    try:
        return FIGURE_SPECS[panel][1]
    except KeyError:
        raise ValueError(
            f"unknown panel {panel!r}; choose from {sorted(FIGURE_SPECS)}"
        ) from None


def generate_figure(
    panel: str,
    n_users: int | None = None,
    seed: int = 0,
    quick: bool = False,
    progress: Callable[[str], None] | None = None,
    engine: EngineSpec | str | None = None,
    interest_backend: str | None = None,
    *,
    engine_kind: str | None = None,
) -> SweepTable:
    """Run the sweep behind one Figure-1 panel and return its table.

    Parameters
    ----------
    panel:
        ``"1a"`` … ``"1d"``.
    n_users:
        Population per instance; ``None`` keeps the library default.
    seed:
        Root seed for workload generation and stochastic methods.
    quick:
        Use a miniature grid (seconds instead of minutes); shapes still
        hold, absolute values shrink.
    progress:
        Optional per-grid-point callback (the CLI passes a stderr print).
    engine:
        :class:`EngineSpec` (or kind string) behind every method;
        ``engine_kind`` is the deprecated string-only spelling.
    interest_backend:
        ``mu`` storage for the generated workloads; ``None`` follows the
        engine spec (sparse storage for the sparse engine).
    """
    if panel not in FIGURE_SPECS:
        raise ValueError(
            f"unknown panel {panel!r}; choose from {sorted(FIGURE_SPECS)}"
        )
    spec = resolve_engine_spec(engine, engine_kind, owner="generate_figure")
    x_label, __, title = FIGURE_SPECS[panel]
    base = (
        ExperimentConfig(n_users=n_users)
        if n_users is not None
        else ExperimentConfig()
    )
    base = base.with_backend(interest_backend or spec.interest_backend)

    if panel in ("1a", "1b"):
        grid = QUICK_K_GRID if quick else FULL_K_GRID
        sweep = sweep_k(grid, base=base)
    else:
        k = 20 if quick else 100
        factors = QUICK_INTERVAL_FACTORS if quick else None
        if factors is not None:
            sweep = sweep_intervals(k=k, factors=factors, base=base)
        else:
            sweep = sweep_intervals(k=k, base=base)

    return run_sweep(
        sweep,
        x_label=x_label,
        title=title,
        root_seed=seed,
        progress=progress,
        engine=spec,
    )
