"""Text rendering of sweep results — the "figures" of a terminal library.

The paper's Figure 1 plots utility/time against k and |T| for GRD, TOP and
RAND.  We regenerate the same series and render them as aligned text
tables plus a coarse ASCII chart, so `ses-repro figure 1a` visibly shows
who wins and how gaps grow without any plotting dependency.
"""

from __future__ import annotations

from repro.harness.results import SweepTable

__all__ = ["format_table", "format_ascii_chart", "format_figure"]

_CHART_WIDTH = 48


def format_table(table: SweepTable, value: str = "utility") -> str:
    """Aligned fixed-width grid: one row per x, one column per method."""
    methods = table.methods()
    header = [table.x_label.rjust(10)] + [m.rjust(12) for m in methods]
    lines = ["".join(header)]
    for x in table.x_values():
        cells = [f"{x:g}".rjust(10)]
        for method in methods:
            match = [r for r in table.rows if r.x == x and r.method == method]
            if not match:
                cells.append("—".rjust(12))
            elif value == "utility":
                cells.append(f"{match[0].utility:.2f}".rjust(12))
            else:
                cells.append(f"{match[0].runtime_seconds * 1e3:.1f}ms".rjust(12))
        lines.append("".join(cells))
    return "\n".join(lines)


def format_ascii_chart(table: SweepTable, value: str = "utility") -> str:
    """Horizontal bar chart per (x, method), scaled to the global maximum."""
    rows = []
    peak = 0.0
    for method in table.methods():
        xs, ys = table.series(method, value=value)
        for x, y in zip(xs, ys):
            rows.append((x, method, y))
            peak = max(peak, y)
    if peak <= 0:
        peak = 1.0
    lines = []
    for x, method, y in sorted(rows):
        bar = "#" * max(1, round(_CHART_WIDTH * y / peak)) if y > 0 else ""
        if value == "utility":
            label = f"{y:.2f}"
        else:
            label = f"{y * 1e3:.1f}ms"
        lines.append(
            f"{table.x_label}={x:<8g} {method:<6} |{bar:<{_CHART_WIDTH}}| {label}"
        )
    return "\n".join(lines)


def format_figure(table: SweepTable, value: str = "utility") -> str:
    """Full panel: title, aligned table, ASCII chart."""
    parts = []
    if table.title:
        parts.append(f"== {table.title} ==")
    parts.append(format_table(table, value=value))
    parts.append("")
    parts.append(format_ascii_chart(table, value=value))
    return "\n".join(parts)
