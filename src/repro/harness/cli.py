"""Command-line interface: ``ses-repro`` / ``python -m repro``.

The CLI is a thin client of the :mod:`repro.api` facade: solver choices
come from :data:`~repro.api.solver_registry` (a newly registered solver
appears here automatically), engine choices from
:data:`~repro.core.engine.ENGINE_KINDS`, and the ``solve``/``demo``
commands serve their queries through a
:class:`~repro.api.ScheduleSession`.

Subcommands
-----------

``figure {1a,1b,1c,1d}``
    Regenerate one panel of the paper's Figure 1 (utility/time vs k/|T|).
    ``--quick`` shrinks the grid and population for a seconds-scale run;
    ``--users`` / ``--seed`` control scale and reproducibility; ``--csv``
    dumps the raw series.

``dataset``
    Generate the synthetic Meetup-style EBSN and print the calibration
    statistics the paper reports (mean overlap, conflict fraction, sizes).

``solve``
    Load an instance JSON (see :mod:`repro.data.serialization`), run a
    solver, print the schedule and utility.  ``--pin T:E`` /
    ``--forbid T:E`` (repeatable) thread organizer locks through the
    solve: pinned events are guaranteed their interval, forbidden cells
    are never selected.

``gaps``
    Solve a draft like ``solve``, then print the organizer gap report:
    every unscheduled event with the intervals that could still host it,
    estimated marginal gains, and why the rest are off the table
    (blocked / forbidden / dominated).  Accepts the same ``--pin`` /
    ``--forbid`` locks; ``--explain-locks`` dry-runs pin feasibility
    (via :meth:`~repro.interactive.locks.LockSet.explain`) and exits
    without solving — nonzero when the locks are infeasible.

``solvers``
    List every registered solver with its capabilities, as aligned
    kind/capability columns; ``--kind {batch,refiner,online}`` filters.

``stream``
    Streaming workloads: generate (or load) a change-event trace and
    replay it against one or more maintenance policies, printing per-op
    latency and final-utility lines per policy (see :mod:`repro.stream`).

``lint``
    Run the :mod:`repro.analysis` invariant linter over source trees
    (delta exhaustiveness, hot-path freeze bans, frozen-op discipline,
    registry completeness, determinism, shim bans, dtype discipline).
    Exit code 0 clean / 1 findings / 2 internal error.

``serve-bench``
    Passthrough to ``benchmarks/bench_serving.py``: the concurrent
    serving benchmark (warm :class:`~repro.serve.PlanePool` vs cold
    per-request construction, N client threads, mixed workloads).

``shard-bench``
    Passthrough to ``benchmarks/bench_shard_scaling.py``: sharded
    ScorePlane fills and solves across a user-count x shard-count panel
    with parity checks against the unsharded engine (see
    :mod:`repro.shard`).  ``solve`` and ``stream`` accept ``--shards`` /
    ``--workers`` to run their engines sharded.

``resilience-bench``
    Passthrough to ``benchmarks/bench_resilience.py``: crash-recovery
    fidelity, fault-injected convergence and journaling overhead (see
    :mod:`repro.resilience`).

``demo``
    End-to-end smoke run on a small instance: all methods side by side.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence

from repro.api import (
    ENGINE_KINDS,
    EngineSpec,
    ScheduleSession,
    SolveRequest,
    solver_registry,
)
from repro.algorithms.registry import SOLVER_KINDS
from repro.stream.policies import POLICY_NAMES
from repro.ebsn.generator import EBSNConfig, MeetupStyleGenerator
from repro.ebsn.stats import summarize
from repro.harness.figures import FIGURE_SPECS
from repro.harness.report import format_figure
from repro.workloads.config import ExperimentConfig

__all__ = ["main", "build_parser"]


def _add_engine_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--engine",
        choices=ENGINE_KINDS,
        default=ENGINE_KINDS[0],
        help="score engine: vectorized (dense numpy, default), sparse "
        "(CSC interest, Meetup-scale populations), reference (slow oracle)",
    )


def _add_shard_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--shards", type=int, default=None, metavar="P",
        help="partition the user axis into P shards and merge per-shard "
        "score partials (repro.shard; results match the unsharded engine)",
    )
    parser.add_argument(
        "--workers", type=int, default=None, metavar="W",
        help="thread-pool width for sharded fan-outs (default: one per "
        "shard; requires --shards)",
    )


def _engine_spec(args: argparse.Namespace) -> EngineSpec:
    return EngineSpec(
        kind=args.engine,
        backend=getattr(args, "backend", None),
        shards=getattr(args, "shards", None),
        workers=getattr(args, "workers", None),
    )


def _add_lock_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--pin", action="append", default=[], metavar="T:E",
        help="pin event E to interval T (repeatable); pins count toward -k "
        "and are guaranteed in the result",
    )
    parser.add_argument(
        "--forbid", action="append", default=[], metavar="T:E",
        help="never place event E at interval T (repeatable)",
    )


def _parse_cell(text: str, flag: str) -> tuple[int, int]:
    interval, sep, event = text.partition(":")
    if not sep or not interval.strip() or not event.strip():
        raise SystemExit(
            f"ses-repro: {flag} expects INTERVAL:EVENT (e.g. 2:5), got {text!r}"
        )
    try:
        return int(interval), int(event)
    except ValueError:
        raise SystemExit(
            f"ses-repro: {flag} expects integer INTERVAL:EVENT, got {text!r}"
        ) from None


def _locks_from_args(args: argparse.Namespace) -> "LockSet | None":
    from repro.interactive import LockSet

    locks = LockSet(
        pins=tuple(_parse_cell(text, "--pin") for text in args.pin),
        forbids=frozenset(_parse_cell(text, "--forbid") for text in args.forbid),
    )
    return LockSet.coerce(locks)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ses-repro",
        description=(
            "Reproduction of 'Social Event Scheduling' (ICDE 2018): "
            "solvers, synthetic Meetup data, and Figure-1 experiments."
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    figure = commands.add_parser("figure", help="regenerate a Figure 1 panel")
    figure.add_argument("panel", choices=sorted(FIGURE_SPECS))
    figure.add_argument("--seed", type=int, default=0)
    figure.add_argument(
        "--users", type=int, default=None, help="population size (default 3000)"
    )
    figure.add_argument(
        "--quick", action="store_true", help="tiny grid for a fast sanity run"
    )
    figure.add_argument("--csv", type=str, default=None, help="write raw rows here")
    _add_engine_argument(figure)
    figure.add_argument(
        "--backend",
        choices=("dense", "sparse"),
        default=None,
        help="mu storage for generated workloads "
        "(default: sparse when --engine sparse, else dense)",
    )

    dataset = commands.add_parser("dataset", help="generate + summarize the EBSN")
    dataset.add_argument("--seed", type=int, default=0)
    dataset.add_argument("--users", type=int, default=2000)
    dataset.add_argument("--events", type=int, default=600)
    dataset.add_argument("--groups", type=int, default=80)

    solve = commands.add_parser("solve", help="solve an instance JSON file")
    solve.add_argument("path", help="instance file from repro.data.save_instance")
    solve.add_argument("-k", type=int, required=True, help="events to schedule")
    solve.add_argument(
        "--solver",
        choices=solver_registry.one_shot_names(),
        default="grd",
    )
    solve.add_argument("--seed", type=int, default=0)
    solve.add_argument(
        "--json", action="store_true", help="emit the schedule as JSON"
    )
    solve.add_argument(
        "--report",
        action="store_true",
        help="print the full schedule report (per-event attendance, "
        "staffing utilization, cannibalization)",
    )
    _add_lock_arguments(solve)
    _add_engine_argument(solve)
    _add_shard_arguments(solve)

    gaps = commands.add_parser(
        "gaps", help="solve a draft, then print the organizer gap report"
    )
    gaps.add_argument("path", help="instance file from repro.data.save_instance")
    gaps.add_argument("-k", type=int, required=True, help="events to schedule")
    gaps.add_argument(
        "--solver",
        choices=solver_registry.one_shot_names(),
        default="grd",
    )
    gaps.add_argument("--seed", type=int, default=0)
    gaps.add_argument(
        "--limit", type=int, default=None, metavar="N",
        help="report only the N best gap events (default: all)",
    )
    gaps.add_argument(
        "--explain-locks", action="store_true",
        help="dry-run the lock set's pin feasibility against the "
        "instance and exit without solving (nonzero exit if infeasible)",
    )
    _add_lock_arguments(gaps)
    _add_engine_argument(gaps)
    _add_shard_arguments(gaps)

    solvers = commands.add_parser(
        "solvers", help="list every registered solver and its capabilities"
    )
    solvers.add_argument(
        "--kind",
        choices=SOLVER_KINDS,
        default=None,
        help="only list solvers of this kind (batch one-shot solvers, "
        "refiners of existing schedules, or online maintainers)",
    )

    stream = commands.add_parser(
        "stream",
        help="replay a change-event trace under maintenance policies",
    )
    stream.add_argument(
        "--trace", type=str, default=None,
        help="JSONL trace to replay (default: generate one)",
    )
    stream.add_argument(
        "--save-trace", type=str, default=None,
        help="write the generated trace here (JSONL)",
    )
    stream.add_argument(
        "--policy",
        action="append",
        choices=POLICY_NAMES,
        default=None,
        help="maintenance policy to replay under (repeatable; "
        "default: all of them)",
    )
    stream.add_argument("--ops", type=int, default=30, help="trace length")
    stream.add_argument("-k", type=int, default=20, help="initial budget")
    stream.add_argument(
        "--users", type=int, default=500, help="population size"
    )
    stream.add_argument("--seed", type=int, default=0)
    stream.add_argument(
        "--rebuild-every", type=int, default=1,
        help="ops between re-solves (periodic-rebuild policy)",
    )
    stream.add_argument(
        "--drift-threshold", type=float, default=None,
        help="interest-mass pressure triggering a rebuild (hybrid policy; "
        "default: 10%% of total candidate interest mass)",
    )
    stream.add_argument(
        "--oracle-every", type=int, default=None,
        help="sample regret vs a fresh GRD re-solve every N ops "
        "(each sample costs a full solve)",
    )
    _add_engine_argument(stream)
    _add_shard_arguments(stream)
    stream.add_argument(
        "--backend",
        choices=("dense", "sparse"),
        default=None,
        help="mu storage for the generated workload "
        "(default: sparse when --engine sparse, else dense)",
    )

    lint = commands.add_parser(
        "lint",
        help="run the repo-invariant linter (repro.analysis) over sources",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    lint.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="NAME",
        help="run only this rule (repeatable; default: the full battery)",
    )
    lint.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable ses-lint/1 report on stdout",
    )
    lint.add_argument(
        "--output",
        type=str,
        default=None,
        metavar="FILE",
        help="also write the JSON report here (CI artifact)",
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue with rationales and exit",
    )

    serve_bench = commands.add_parser(
        "serve-bench",
        help="run the concurrent-serving benchmark (benchmarks/bench_serving.py)",
        description=(
            "Passthrough to benchmarks/bench_serving.py: N client threads "
            "against a warm ServingSession plane pool vs cold per-request "
            "construction.  All arguments after the subcommand are forwarded "
            "(e.g. `ses-repro serve-bench --smoke --json out.json`)."
        ),
    )
    serve_bench.add_argument(
        "bench_args",
        nargs=argparse.REMAINDER,
        help="arguments forwarded to bench_serving.py (try `-- --help`)",
    )

    shard_bench = commands.add_parser(
        "shard-bench",
        help="run the shard-scaling benchmark (benchmarks/bench_shard_scaling.py)",
        description=(
            "Passthrough to benchmarks/bench_shard_scaling.py: ScorePlane "
            "fills and solves across a user-count x shard-count panel, with "
            "sharded-vs-unsharded parity checks.  All arguments after the "
            "subcommand are forwarded "
            "(e.g. `ses-repro shard-bench --smoke --json out.json`)."
        ),
    )
    shard_bench.add_argument(
        "bench_args",
        nargs=argparse.REMAINDER,
        help="arguments forwarded to bench_shard_scaling.py (try `-- --help`)",
    )

    resilience_bench = commands.add_parser(
        "resilience-bench",
        help="run the resilience benchmark (benchmarks/bench_resilience.py)",
        description=(
            "Passthrough to benchmarks/bench_resilience.py: crash-recovery "
            "fidelity, fault-injected convergence and checkpoint/journal "
            "overhead.  All arguments after the subcommand are forwarded "
            "(e.g. `ses-repro resilience-bench --smoke --json out.json`)."
        ),
    )
    resilience_bench.add_argument(
        "bench_args",
        nargs=argparse.REMAINDER,
        help="arguments forwarded to bench_resilience.py (try `-- --help`)",
    )

    demo = commands.add_parser("demo", help="small end-to-end comparison run")
    _add_engine_argument(demo)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    resolved = list(sys.argv[1:] if argv is None else argv)
    if resolved and resolved[0] in _BENCH_MODULES:
        # route before argparse: REMAINDER refuses to capture leading
        # option-shaped tokens, and the forwarded benchmark owns all of
        # its own flags (`serve-bench --smoke` should just work)
        forwarded = resolved[1:]
        return _run_bench_passthrough(
            argparse.Namespace(command=resolved[0], bench_args=forwarded)
        )
    args = build_parser().parse_args(resolved)
    handler = {
        "figure": _run_figure,
        "dataset": _run_dataset,
        "solve": _run_solve,
        "gaps": _run_gaps,
        "solvers": _run_solvers,
        "stream": _run_stream,
        "lint": _run_lint,
        "serve-bench": _run_bench_passthrough,
        "shard-bench": _run_bench_passthrough,
        "resilience-bench": _run_bench_passthrough,
        "demo": _run_demo,
    }[args.command]
    return handler(args)


# ----------------------------------------------------------------------
def _run_figure(args: argparse.Namespace) -> int:
    from repro.harness.figures import figure_value_axis, generate_figure

    table = generate_figure(
        args.panel,
        n_users=args.users,
        seed=args.seed,
        quick=args.quick,
        progress=lambda line: print(line, file=sys.stderr),
        engine=_engine_spec(args),
    )
    print(format_figure(table, value=figure_value_axis(args.panel)))
    if args.csv:
        table.to_csv(args.csv)
        print(f"raw rows written to {args.csv}", file=sys.stderr)
    return 0


def _run_dataset(args: argparse.Namespace) -> int:
    config = EBSNConfig(
        n_users=args.users, n_events=args.events, n_groups=args.groups
    )
    snapshot = MeetupStyleGenerator(config).generate(seed=args.seed)
    stats = summarize(snapshot.network)
    print(json.dumps(stats, indent=2, sort_keys=True))
    print(
        f"horizon={snapshot.horizon_slots} slots "
        f"(calibrated for mean overlap {config.target_overlap})",
        file=sys.stderr,
    )
    return 0


def _run_solve(args: argparse.Namespace) -> int:
    from repro.core.errors import LockError
    from repro.data.serialization import schedule_to_dict

    session = ScheduleSession.from_file(
        args.path, default_engine=_engine_spec(args)
    )
    info = solver_registry.get(args.solver)
    try:
        response = session.solve(
            SolveRequest(
                k=args.k,
                solver=args.solver,
                seed=args.seed if info.seeded else None,
                locks=_locks_from_args(args),
            )
        )
    except LockError as exc:
        print(f"ses-repro: lock error: {exc}", file=sys.stderr)
        return 1
    result = response.result
    instance = session.instance
    if args.json:
        print(json.dumps(schedule_to_dict(result.schedule)))
    elif args.report:
        print(result.summary())
        print()
        print(session.report(result.schedule).format())
    else:
        print(result.summary())
        for assignment in result.schedule:
            event = instance.events[assignment.event]
            interval = instance.intervals[assignment.interval]
            print(
                f"  {event.display_name} -> {interval.display_name} "
                f"(location {event.location}, xi={event.required_resources:.2f})"
            )
    return 0


def _run_gaps(args: argparse.Namespace) -> int:
    from repro.core.errors import LockError

    session = ScheduleSession.from_file(
        args.path, default_engine=_engine_spec(args)
    )
    info = solver_registry.get(args.solver)
    locks = _locks_from_args(args)
    if getattr(args, "explain_locks", False):
        from repro.interactive.locks import LockSet

        report = (locks or LockSet()).explain(session.instance, k=args.k)
        print(report.describe())
        return 0 if report.feasible else 1
    try:
        response = session.solve(
            SolveRequest(
                k=args.k,
                solver=args.solver,
                seed=args.seed if info.seeded else None,
                locks=locks,
            )
        )
        report = session.gap_report(response, limit=args.limit)
    except LockError as exc:
        print(f"ses-repro: lock error: {exc}", file=sys.stderr)
        return 1
    print(response.result.summary())
    if locks is not None:
        print(f"locks: {locks.describe()}")
    print()
    print(report.describe())
    return 0


def _run_solvers(args: argparse.Namespace) -> int:
    kind_filter = getattr(args, "kind", None)
    infos = [
        info
        for info in solver_registry
        if kind_filter is None or info.kind == kind_filter
    ]
    if not infos:
        print(f"no registered solvers of kind {kind_filter!r}")
        return 0
    name_width = max(len(info.name) for info in infos)
    kind_width = max(len(info.kind) for info in infos)
    for info in infos:
        capabilities = [
            flag
            for flag, enabled in (
                ("seeded", info.seeded),
                ("anytime", info.anytime),
                ("strict", info.strict_capable),
            )
            if enabled
        ]
        print(
            f"{info.name:<{name_width}}  {info.kind:<{kind_width}}  "
            f"{', '.join(capabilities) or '-':<22}  "
            f"{info.display_name}: {info.summary}"
        )
        if info.default_params:
            defaults = ", ".join(
                f"{key}={value}" for key, value in sorted(info.default_params.items())
            )
            print(f"{'':<{name_width}}  {'':<{kind_width}}  defaults: {defaults}")
    return 0


def _run_stream(args: argparse.Namespace) -> int:
    from repro.stream import POLICY_NAMES as ALL_POLICIES
    from repro.stream import StreamDriver, Trace, make_policy
    from repro.workloads.generator import WorkloadGenerator
    from repro.workloads.traces import TraceConfig, TraceGenerator

    spec = _engine_spec(args)
    if args.trace is not None:
        # replay instance shape comes from the trace header, so the ops'
        # event/interval indices are valid regardless of -k/--users
        trace = Trace.load(args.trace)
        config = ExperimentConfig(
            k=trace.initial_k,
            n_users=trace.n_users,
            n_events=trace.n_events,
            n_intervals=trace.n_intervals,
            interest_backend=spec.interest_backend,
        )
        if trace.n_users != args.users or trace.initial_k != args.k:
            print(
                f"using the trace's shape (k={trace.initial_k}, "
                f"users={trace.n_users}); -k/--users are for generation",
                file=sys.stderr,
            )
    else:
        config = ExperimentConfig(
            k=args.k,
            n_users=args.users,
            interest_backend=spec.interest_backend,
        )
        trace = TraceGenerator(
            config, TraceConfig(n_ops=args.ops), root_seed=args.seed
        ).generate()
    if args.save_trace:
        trace.save(args.save_trace)
        print(f"trace written to {args.save_trace}", file=sys.stderr)
    print(trace.describe(), file=sys.stderr)

    instance = WorkloadGenerator(root_seed=args.seed).build(config)
    print(instance.describe(), file=sys.stderr)
    policies = args.policy or list(ALL_POLICIES)
    for name in policies:
        params = {}
        if name == "periodic-rebuild":
            params["rebuild_every"] = args.rebuild_every
        elif name == "hybrid" and args.drift_threshold is not None:
            params["drift_threshold"] = args.drift_threshold
        driver = StreamDriver(
            instance,
            policy=make_policy(name, **params),
            engine=spec,
            oracle_every=args.oracle_every,
        )
        print(f"  {driver.run(trace).summary()}")
    return 0


def _run_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis import (
        ALL_RULES,
        LintError,
        render_json,
        render_text,
        resolve_rules,
        run_lint,
    )

    if args.list_rules:
        width = max(len(rule.name) for rule in ALL_RULES)
        for rule in ALL_RULES:
            print(f"{rule.name:<{width}}  {rule.rationale}")
        return 0
    try:
        result = run_lint(args.paths, resolve_rules(args.rule))
    except LintError as exc:
        print(f"ses-lint: internal error: {exc}", file=sys.stderr)
        return 2
    if args.output:
        Path(args.output).write_text(render_json(result), encoding="utf-8")
    if args.json:
        print(render_json(result), end="")
    else:
        print(render_text(result), end="")
    return result.exit_code


#: passthrough subcommand -> benchmark module under benchmarks/
_BENCH_MODULES = {
    "serve-bench": "bench_serving",
    "shard-bench": "bench_shard_scaling",
    "resilience-bench": "bench_resilience",
}


def _run_bench_passthrough(args: argparse.Namespace) -> int:
    import importlib
    from pathlib import Path

    stem = _BENCH_MODULES[args.command]
    try:
        module = importlib.import_module(f"benchmarks.{stem}")
    except ModuleNotFoundError:
        # src-layout checkout: benchmarks/ sits next to src/, two levels
        # above the installed repro package
        repo_root = Path(__file__).resolve().parents[3]
        if not (repo_root / "benchmarks" / f"{stem}.py").exists():
            print(
                f"ses-repro {args.command}: benchmarks/{stem}.py not "
                "found; run from a full repository checkout",
                file=sys.stderr,
            )
            return 2
        sys.path.insert(0, str(repo_root))
        module = importlib.import_module(f"benchmarks.{stem}")
    forwarded = list(args.bench_args)
    if forwarded and forwarded[0] == "--":
        forwarded = forwarded[1:]
    return int(module.main(forwarded))


#: demo line-up: registry name -> extra request params
_DEMO_METHODS: dict[str, dict] = {
    "grd": {},
    "grd-heap": {},
    "top": {},
    "rand": {},
    "sa": {"steps": 500},
}
_DEMO_SEED = 7


def _run_demo(args: argparse.Namespace) -> int:
    from repro.workloads.generator import WorkloadGenerator

    spec = EngineSpec(kind=args.engine)
    config = ExperimentConfig(
        k=20, n_users=500, interest_backend=spec.interest_backend
    )
    session = ScheduleSession(
        WorkloadGenerator(root_seed=7).build(config), default_engine=spec
    )
    print(session.instance.describe())
    requests = [
        SolveRequest(
            k=config.k,
            solver=name,
            seed=_DEMO_SEED if solver_registry.get(name).seeded else None,
            params=params,
        )
        for name, params in _DEMO_METHODS.items()
    ]
    for response in session.solve_many(requests):
        print(" ", response.result.summary())
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
