"""Command-line interface: ``ses-repro`` / ``python -m repro``.

Subcommands
-----------

``figure {1a,1b,1c,1d}``
    Regenerate one panel of the paper's Figure 1 (utility/time vs k/|T|).
    ``--quick`` shrinks the grid and population for a seconds-scale run;
    ``--users`` / ``--seed`` control scale and reproducibility; ``--csv``
    dumps the raw series.

``dataset``
    Generate the synthetic Meetup-style EBSN and print the calibration
    statistics the paper reports (mean overlap, conflict fraction, sizes).

``solve``
    Load an instance JSON (see :mod:`repro.data.serialization`), run a
    solver, print the schedule and utility.

``demo``
    End-to-end smoke run on a small instance: all methods side by side.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence

from repro.algorithms import (
    AnnealingScheduler,
    GreedyScheduler,
    LazyGreedyScheduler,
    RandomScheduler,
    TopKScheduler,
)
from repro.data.serialization import load_instance, schedule_to_dict
from repro.ebsn.generator import EBSNConfig, MeetupStyleGenerator
from repro.ebsn.stats import summarize
from repro.harness.figures import FIGURE_SPECS
from repro.harness.report import format_figure
from repro.workloads.config import ExperimentConfig

__all__ = ["main", "build_parser"]

_SOLVERS = {
    "grd": GreedyScheduler,
    "grd-heap": LazyGreedyScheduler,
    "top": TopKScheduler,
    "rand": RandomScheduler,
    "sa": AnnealingScheduler,
}

_ENGINE_KINDS = ("vectorized", "sparse", "reference")


def _add_engine_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--engine",
        choices=_ENGINE_KINDS,
        default="vectorized",
        help="score engine: vectorized (dense numpy, default), sparse "
        "(CSC interest, Meetup-scale populations), reference (slow oracle)",
    )

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ses-repro",
        description=(
            "Reproduction of 'Social Event Scheduling' (ICDE 2018): "
            "solvers, synthetic Meetup data, and Figure-1 experiments."
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    figure = commands.add_parser("figure", help="regenerate a Figure 1 panel")
    figure.add_argument("panel", choices=sorted(FIGURE_SPECS))
    figure.add_argument("--seed", type=int, default=0)
    figure.add_argument(
        "--users", type=int, default=None, help="population size (default 3000)"
    )
    figure.add_argument(
        "--quick", action="store_true", help="tiny grid for a fast sanity run"
    )
    figure.add_argument("--csv", type=str, default=None, help="write raw rows here")
    _add_engine_argument(figure)
    figure.add_argument(
        "--backend",
        choices=("dense", "sparse"),
        default=None,
        help="mu storage for generated workloads "
        "(default: sparse when --engine sparse, else dense)",
    )

    dataset = commands.add_parser("dataset", help="generate + summarize the EBSN")
    dataset.add_argument("--seed", type=int, default=0)
    dataset.add_argument("--users", type=int, default=2000)
    dataset.add_argument("--events", type=int, default=600)
    dataset.add_argument("--groups", type=int, default=80)

    solve = commands.add_parser("solve", help="solve an instance JSON file")
    solve.add_argument("path", help="instance file from repro.data.save_instance")
    solve.add_argument("-k", type=int, required=True, help="events to schedule")
    solve.add_argument("--solver", choices=sorted(_SOLVERS), default="grd")
    solve.add_argument("--seed", type=int, default=0)
    solve.add_argument(
        "--json", action="store_true", help="emit the schedule as JSON"
    )
    solve.add_argument(
        "--report",
        action="store_true",
        help="print the full schedule report (per-event attendance, "
        "staffing utilization, cannibalization)",
    )
    _add_engine_argument(solve)

    demo = commands.add_parser("demo", help="small end-to-end comparison run")
    _add_engine_argument(demo)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "figure": _run_figure,
        "dataset": _run_dataset,
        "solve": _run_solve,
        "demo": _run_demo,
    }[args.command]
    return handler(args)


# ----------------------------------------------------------------------
def _run_figure(args: argparse.Namespace) -> int:
    from repro.harness.figures import figure_value_axis, generate_figure

    backend = args.backend
    if backend is None:
        backend = "sparse" if args.engine == "sparse" else "dense"
    table = generate_figure(
        args.panel,
        n_users=args.users,
        seed=args.seed,
        quick=args.quick,
        progress=lambda line: print(line, file=sys.stderr),
        engine_kind=args.engine,
        interest_backend=backend,
    )
    print(format_figure(table, value=figure_value_axis(args.panel)))
    if args.csv:
        table.to_csv(args.csv)
        print(f"raw rows written to {args.csv}", file=sys.stderr)
    return 0


def _run_dataset(args: argparse.Namespace) -> int:
    config = EBSNConfig(
        n_users=args.users, n_events=args.events, n_groups=args.groups
    )
    snapshot = MeetupStyleGenerator(config).generate(seed=args.seed)
    stats = summarize(snapshot.network)
    print(json.dumps(stats, indent=2, sort_keys=True))
    print(
        f"horizon={snapshot.horizon_slots} slots "
        f"(calibrated for mean overlap {config.target_overlap})",
        file=sys.stderr,
    )
    return 0


def _run_solve(args: argparse.Namespace) -> int:
    instance = load_instance(args.path)
    solver_cls = _SOLVERS[args.solver]
    if solver_cls in (RandomScheduler, AnnealingScheduler):
        solver = solver_cls(engine_kind=args.engine, seed=args.seed)
    else:
        solver = solver_cls(engine_kind=args.engine)
    result = solver.solve(instance, args.k)
    if args.json:
        print(json.dumps(schedule_to_dict(result.schedule)))
    elif args.report:
        from repro.harness.inspect import ScheduleReport

        print(result.summary())
        print()
        print(ScheduleReport(instance, result.schedule).format())
    else:
        print(result.summary())
        for assignment in result.schedule:
            event = instance.events[assignment.event]
            interval = instance.intervals[assignment.interval]
            print(
                f"  {event.display_name} -> {interval.display_name} "
                f"(location {event.location}, xi={event.required_resources:.2f})"
            )
    return 0


def _run_demo(args: argparse.Namespace) -> int:
    from repro.workloads.generator import WorkloadGenerator

    engine = args.engine
    backend = "sparse" if engine == "sparse" else "dense"
    config = ExperimentConfig(k=20, n_users=500, interest_backend=backend)
    instance = WorkloadGenerator(root_seed=7).build(config)
    print(instance.describe())
    methods = {
        "GRD": GreedyScheduler(engine_kind=engine),
        "GRD-heap": LazyGreedyScheduler(engine_kind=engine),
        "TOP": TopKScheduler(engine_kind=engine),
        "RAND": RandomScheduler(engine_kind=engine, seed=7),
        "SA": AnnealingScheduler(engine_kind=engine, seed=7, steps=500),
    }
    for name, solver in methods.items():
        print(" ", solver.solve(instance, config.k).summary())
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
