"""Experiment harness: sweep runner, result tables, text reports, CLI."""

from repro.harness.figures import FIGURE_SPECS, figure_value_axis, generate_figure
from repro.harness.inspect import EventReport, IntervalReport, ScheduleReport
from repro.harness.report import format_ascii_chart, format_figure, format_table
from repro.harness.whatif import (
    WhatIfCurve,
    competition_cost,
    sweep_locations,
    sweep_theta,
)
from repro.harness.results import SweepRow, SweepTable
from repro.harness.runner import paper_methods, run_point, run_sweep
from repro.harness.trials import TrialStats, run_trials

__all__ = [
    "EventReport",
    "FIGURE_SPECS",
    "figure_value_axis",
    "generate_figure",
    "IntervalReport",
    "ScheduleReport",
    "SweepRow",
    "SweepTable",
    "format_ascii_chart",
    "format_figure",
    "format_table",
    "paper_methods",
    "run_point",
    "run_sweep",
    "TrialStats",
    "run_trials",
    "WhatIfCurve",
    "competition_cost",
    "sweep_locations",
    "sweep_theta",
]
