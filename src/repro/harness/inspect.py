"""Schedule inspection: turn a solved schedule into an explainable report.

Organizers don't consume utilities — they consume programs: which event
runs when and where, how many people it should draw, how contested its
slot is, and how much staffing headroom remains.  :class:`ScheduleReport`
computes all of that from an instance + schedule pair and renders it as
aligned text (used by the CLI and examples) or structured rows (used by
tests and downstream tooling).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.engine import make_engine
from repro.core.instance import SESInstance
from repro.core.schedule import Schedule

__all__ = ["EventReport", "IntervalReport", "ScheduleReport"]


@dataclass(frozen=True)
class EventReport:
    """Per-scheduled-event diagnostics."""

    event: int
    name: str
    interval: int
    interval_label: str
    location: int
    required_resources: float
    expected_attendance: float
    #: attendance the event would have drawn alone at this interval
    solo_attendance: float

    @property
    def cannibalization(self) -> float:
        """Attendance lost to co-scheduled siblings (>= 0)."""
        return max(0.0, self.solo_attendance - self.expected_attendance)


@dataclass(frozen=True)
class IntervalReport:
    """Per-used-interval diagnostics."""

    interval: int
    label: str
    n_events: int
    n_competing: int
    resources_used: float
    resources_available: float
    utility: float

    @property
    def utilization(self) -> float:
        """Fraction of the staffing budget consumed (0 when theta = 0)."""
        if self.resources_available <= 0:
            return 0.0
        return self.resources_used / self.resources_available


class ScheduleReport:
    """Computes and renders diagnostics for one (instance, schedule) pair."""

    def __init__(self, instance: SESInstance, schedule: Schedule):
        self._instance = instance
        self._schedule = schedule
        self._events, self._intervals = self._compute()

    # ------------------------------------------------------------------
    @property
    def events(self) -> tuple[EventReport, ...]:
        return self._events

    @property
    def intervals(self) -> tuple[IntervalReport, ...]:
        return self._intervals

    @property
    def total_utility(self) -> float:
        return sum(report.utility for report in self._intervals)

    def total_cannibalization(self) -> float:
        """Summed attendance lost to co-scheduling across all events."""
        return sum(report.cannibalization for report in self._events)

    # ------------------------------------------------------------------
    def _compute(self) -> tuple[tuple[EventReport, ...], tuple[IntervalReport, ...]]:
        instance, schedule = self._instance, self._schedule
        engine = make_engine(instance)
        for assignment in schedule:
            engine.assign(assignment.event, assignment.interval)

        event_reports = []
        for assignment in schedule:
            event = instance.events[assignment.event]
            interval = instance.intervals[assignment.interval]
            omega = engine.omega(assignment.event)

            solo_engine = make_engine(instance)
            solo_engine.assign(assignment.event, assignment.interval)
            solo = solo_engine.omega(assignment.event)

            event_reports.append(
                EventReport(
                    event=assignment.event,
                    name=event.display_name,
                    interval=assignment.interval,
                    interval_label=interval.display_name,
                    location=event.location,
                    required_resources=event.required_resources,
                    expected_attendance=omega,
                    solo_attendance=solo,
                )
            )

        interval_reports = []
        for interval_index in sorted(schedule.used_intervals()):
            interval = instance.intervals[interval_index]
            events = schedule.events_at(interval_index)
            used = sum(
                instance.events[event].required_resources for event in events
            )
            interval_reports.append(
                IntervalReport(
                    interval=interval_index,
                    label=interval.display_name,
                    n_events=len(events),
                    n_competing=len(
                        instance.competing_by_interval[interval_index]
                    ),
                    resources_used=used,
                    resources_available=instance.theta,
                    utility=engine.interval_utility(interval_index),
                )
            )
        return tuple(event_reports), tuple(interval_reports)

    # ------------------------------------------------------------------
    def format(self) -> str:
        """Aligned text rendering of the full program."""
        lines = [
            f"schedule: {len(self._events)} events over "
            f"{len(self._intervals)} intervals, "
            f"total expected attendance {self.total_utility:.2f}",
            "",
            f"{'interval':>14} {'events':>7} {'rivals':>7} "
            f"{'staff':>12} {'utility':>10}",
        ]
        for report in self._intervals:
            staff = f"{report.resources_used:.1f}/{report.resources_available:g}"
            lines.append(
                f"{report.label:>14} {report.n_events:>7} "
                f"{report.n_competing:>7} {staff:>12} {report.utility:>10.2f}"
            )
        lines.append("")
        lines.append(
            f"{'event':>20} {'interval':>14} {'loc':>4} "
            f"{'attend':>9} {'solo':>9} {'lost':>7}"
        )
        for report in sorted(self._events, key=lambda r: -r.expected_attendance):
            lines.append(
                f"{report.name:>20} {report.interval_label:>14} "
                f"{report.location:>4} {report.expected_attendance:>9.2f} "
                f"{report.solo_attendance:>9.2f} {report.cannibalization:>7.2f}"
            )
        return "\n".join(lines)
