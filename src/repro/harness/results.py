"""Result tables for experiment sweeps.

A sweep produces one :class:`SweepRow` per (x-value, method); the
:class:`SweepTable` collects them and can slice out per-method series —
the exact data behind each Figure 1 panel — or render itself as markdown
and CSV for EXPERIMENTS.md.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["SweepRow", "SweepTable"]


@dataclass(frozen=True)
class SweepRow:
    """One measurement: a method's outcome at one sweep grid point."""

    x: float
    method: str
    utility: float
    runtime_seconds: float
    achieved_k: int
    requested_k: int
    extra: dict[str, float] = field(default_factory=dict)


class SweepTable:
    """Ordered collection of sweep measurements with reporting helpers."""

    def __init__(self, x_label: str, title: str = ""):
        self._x_label = x_label
        self._title = title
        self._rows: list[SweepRow] = []

    # ------------------------------------------------------------------
    @property
    def x_label(self) -> str:
        return self._x_label

    @property
    def title(self) -> str:
        return self._title

    @property
    def rows(self) -> tuple[SweepRow, ...]:
        return tuple(self._rows)

    def add(self, row: SweepRow) -> None:
        self._rows.append(row)

    def methods(self) -> tuple[str, ...]:
        """Method names in first-appearance order."""
        seen: dict[str, None] = {}
        for row in self._rows:
            seen.setdefault(row.method, None)
        return tuple(seen)

    def x_values(self) -> tuple[float, ...]:
        return tuple(sorted({row.x for row in self._rows}))

    # ------------------------------------------------------------------
    def series(
        self, method: str, value: str = "utility"
    ) -> tuple[list[float], list[float]]:
        """``(xs, ys)`` for one method, sorted by x.

        ``value`` is ``"utility"`` or ``"time"`` (runtime in seconds).
        """
        if value not in ("utility", "time"):
            raise ValueError(f"value must be 'utility' or 'time', got {value!r}")
        points = sorted(
            (row for row in self._rows if row.method == method),
            key=lambda row: row.x,
        )
        if not points:
            raise KeyError(f"no rows for method {method!r}")
        xs = [row.x for row in points]
        ys = [
            row.utility if value == "utility" else row.runtime_seconds
            for row in points
        ]
        return xs, ys

    def winner_at(self, x: float, value: str = "utility") -> str:
        """The best method at grid point ``x`` (max utility / min time)."""
        candidates = [row for row in self._rows if row.x == x]
        if not candidates:
            raise KeyError(f"no rows at x={x}")
        if value == "utility":
            return max(candidates, key=lambda row: row.utility).method
        return min(candidates, key=lambda row: row.runtime_seconds).method

    # ------------------------------------------------------------------
    def to_markdown(self, value: str = "utility") -> str:
        """Grid rendering: one row per x, one column per method."""
        methods = self.methods()
        lines = []
        if self._title:
            lines.append(f"**{self._title}** ({value})")
            lines.append("")
        header = [self._x_label, *methods]
        lines.append("| " + " | ".join(header) + " |")
        lines.append("|" + "|".join(["---"] * len(header)) + "|")
        for x in self.x_values():
            cells = [f"{x:g}"]
            for method in methods:
                match = [
                    row for row in self._rows if row.x == x and row.method == method
                ]
                if not match:
                    cells.append("—")
                elif value == "utility":
                    cells.append(f"{match[0].utility:.2f}")
                else:
                    cells.append(f"{match[0].runtime_seconds * 1e3:.1f}ms")
            lines.append("| " + " | ".join(cells) + " |")
        return "\n".join(lines)

    def to_csv(self, path: str | Path) -> None:
        """Write the raw rows (one line per measurement)."""
        with open(path, "w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            writer.writerow(
                [
                    self._x_label,
                    "method",
                    "utility",
                    "runtime_seconds",
                    "achieved_k",
                    "requested_k",
                ]
            )
            for row in self._rows:
                writer.writerow(
                    [
                        row.x,
                        row.method,
                        row.utility,
                        row.runtime_seconds,
                        row.achieved_k,
                        row.requested_k,
                    ]
                )
