"""Repeated-trial experiments: mean / spread across seeds.

Single-run sweeps (Figure 1) answer "who wins"; claims about *how much*
need variance.  This module reruns a (config, method) pair over several
independently-seeded workload draws and aggregates utilities and runtimes
into :class:`TrialStats` — used by the paper-shape integration tests to
make orderings robust and available to users for error bars.
"""

from __future__ import annotations

import math
from collections.abc import Callable
from dataclasses import dataclass

from repro.algorithms.base import Scheduler
from repro.utils.rng import SeedSequenceFactory
from repro.workloads.config import ExperimentConfig
from repro.workloads.generator import WorkloadGenerator

__all__ = ["TrialStats", "run_trials"]


@dataclass(frozen=True)
class TrialStats:
    """Aggregate of one method's performance across repeated draws."""

    method: str
    utilities: tuple[float, ...]
    runtimes: tuple[float, ...]

    @property
    def n_trials(self) -> int:
        return len(self.utilities)

    @property
    def mean_utility(self) -> float:
        return sum(self.utilities) / len(self.utilities)

    @property
    def std_utility(self) -> float:
        """Sample standard deviation (ddof=1); 0 for a single trial."""
        if len(self.utilities) < 2:
            return 0.0
        mean = self.mean_utility
        variance = sum((u - mean) ** 2 for u in self.utilities) / (
            len(self.utilities) - 1
        )
        return math.sqrt(variance)

    @property
    def mean_runtime(self) -> float:
        return sum(self.runtimes) / len(self.runtimes)

    def confidence_halfwidth(self, z: float = 1.96) -> float:
        """Half-width of the normal-approximation CI for the mean utility."""
        if self.n_trials < 2:
            return 0.0
        return z * self.std_utility / math.sqrt(self.n_trials)

    def summary(self) -> str:
        return (
            f"{self.method}: utility {self.mean_utility:.2f} "
            f"± {self.confidence_halfwidth():.2f} "
            f"({self.n_trials} trials, {self.mean_runtime * 1e3:.1f} ms avg)"
        )


def run_trials(
    config: ExperimentConfig,
    method_factory: Callable[[int], dict[str, Scheduler]],
    n_trials: int = 5,
    root_seed: int = 0,
) -> dict[str, TrialStats]:
    """Run every method over ``n_trials`` independent workload draws.

    ``method_factory`` receives the trial seed and returns fresh solvers —
    stochastic methods (RAND, SA) should consume that seed so trials are
    independent but reproducible.  All methods within a trial see the
    *same* instance, so cross-method comparisons are paired.
    """
    if n_trials <= 0:
        raise ValueError(f"n_trials must be positive, got {n_trials}")
    workload = WorkloadGenerator(root_seed=root_seed)
    seeds = SeedSequenceFactory(root_seed + 1)

    utilities: dict[str, list[float]] = {}
    runtimes: dict[str, list[float]] = {}
    for _ in range(n_trials):
        trial_seed = int(seeds.spawn().integers(2**31 - 1))
        instance = workload.build(config, seed=trial_seed)
        for name, solver in method_factory(trial_seed).items():
            result = solver.solve(instance, config.k)
            utilities.setdefault(name, []).append(result.utility)
            runtimes.setdefault(name, []).append(result.runtime_seconds)

    return {
        name: TrialStats(
            method=name,
            utilities=tuple(utilities[name]),
            runtimes=tuple(runtimes[name]),
        )
        for name in utilities
    }
