"""Parameter sweeps for the paper's Figure 1.

Two sweeps drive all four panels:

* :func:`sweep_k` — vary the number of scheduled events ``k`` with every
  other size at its paper default (``|E| = 2k``, ``|T| = 3k/2``); this is
  Fig. 1a (utility) and Fig. 1b (time).
* :func:`sweep_intervals` — fix ``k`` (default 100) and vary ``|T|`` over
  the paper's grid ``{k/5, k/2, k, 3k/2, 2k, 3k}``; this is Fig. 1c
  (utility) and Fig. 1d (time).

Sweeps are returned **largest point first** so the shared EBSN snapshot is
sized once (see :class:`~repro.workloads.generator.WorkloadGenerator`);
the harness re-sorts rows by x before reporting.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.workloads.config import ExperimentConfig

__all__ = [
    "PAPER_K_GRID",
    "PAPER_INTERVAL_FACTORS",
    "sweep_k",
    "sweep_intervals",
]

#: The k grid: the paper sets default 100 and maximum 500.
PAPER_K_GRID: tuple[int, ...] = (100, 200, 300, 400, 500)

#: |T| grid as fractions of k: "from k/5 up to 3k, with default 3k/2".
PAPER_INTERVAL_FACTORS: tuple[float, ...] = (0.2, 0.5, 1.0, 1.5, 2.0, 3.0)


def sweep_k(
    k_values: Sequence[int] = PAPER_K_GRID,
    base: ExperimentConfig | None = None,
) -> list[tuple[int, ExperimentConfig]]:
    """Configs for the Fig. 1a/1b sweep; x-value is ``k``."""
    if not k_values:
        raise ValueError("k_values must be non-empty")
    base = base or ExperimentConfig()
    ordered = sorted(set(k_values), reverse=True)  # largest first: pool sizing
    return [(k, base.with_k(k)) for k in ordered]


def sweep_intervals(
    k: int = 100,
    factors: Sequence[float] = PAPER_INTERVAL_FACTORS,
    base: ExperimentConfig | None = None,
) -> list[tuple[int, ExperimentConfig]]:
    """Configs for the Fig. 1c/1d sweep; x-value is ``|T|``."""
    if not factors:
        raise ValueError("factors must be non-empty")
    if any(f <= 0 for f in factors):
        raise ValueError(f"interval factors must be positive, got {factors}")
    base = (base or ExperimentConfig()).with_k(k)
    sizes = sorted({max(1, round(f * k)) for f in factors}, reverse=True)
    return [(size, base.with_intervals(size)) for size in sizes]
