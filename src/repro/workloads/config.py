"""Experiment configuration — the paper's Section IV.A parameter sheet.

Defaults transcribe the paper exactly:

==========================  =======================================
number of scheduled events  ``k = 100`` (max 500)
time intervals              ``|T| = 3k/2`` (swept ``k/5 .. 3k``)
candidate events            ``|E| = 2k``
competing events/interval   uniform with mean **8.1** (Meetup-measured)
available locations         **25**
sigma                       ``U[0, 1]``
available resources         ``theta = 20``
required resources          ``xi ~ U[1, 20/3]``
==========================  =======================================

The one deliberate deviation is ``n_users``: the paper runs 42,444 Meetup
users on a C++ implementation; our default is 3,000 so the full benchmark
suite terminates on a laptop, with the full scale one constructor call away
(:meth:`ExperimentConfig.at_meetup_scale`).  Utility *shapes* are preserved
— every method sees the same users — and EXPERIMENTS.md records the choice.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["ExperimentConfig", "PAPER_DEFAULT_K", "PAPER_MAX_K", "MEETUP_USERS"]

PAPER_DEFAULT_K = 100
PAPER_MAX_K = 500
MEETUP_USERS = 42_444

#: Default user count for locally-run experiments (see module docstring).
DEFAULT_BENCH_USERS = 3_000


@dataclass(frozen=True)
class ExperimentConfig:
    """One grid point of the paper's experimental design."""

    k: int = PAPER_DEFAULT_K
    #: ``|T|``; ``None`` means the paper default ``3k/2``.
    n_intervals: int | None = None
    #: ``|E|``; ``None`` means the paper default ``2k``.
    n_events: int | None = None
    mean_competing: float = 8.1
    n_locations: int = 25
    theta: float = 20.0
    xi_range: tuple[float, float] = (1.0, 20.0 / 3.0)
    sigma_source: str = "uniform"
    n_users: int = DEFAULT_BENCH_USERS
    #: ``mu`` storage: ``"dense"`` arrays or ``"sparse"`` CSC (scipy).
    #: Sparse is what makes Meetup-scale user counts tractable; pair it
    #: with the ``"sparse"`` engine kind on the solvers.
    interest_backend: str = "dense"

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise ValueError(f"k must be positive, got {self.k}")
        if self.n_intervals is not None and self.n_intervals <= 0:
            raise ValueError(
                f"n_intervals must be positive, got {self.n_intervals}"
            )
        if self.n_events is not None and self.n_events < self.k:
            raise ValueError(
                f"n_events ({self.n_events}) must be at least k ({self.k})"
            )
        if self.n_users <= 0:
            raise ValueError(f"n_users must be positive, got {self.n_users}")
        if self.mean_competing < 0:
            raise ValueError(
                f"mean_competing must be non-negative, got {self.mean_competing}"
            )
        if self.interest_backend not in ("dense", "sparse"):
            raise ValueError(
                f"interest_backend must be 'dense' or 'sparse', got "
                f"{self.interest_backend!r}"
            )

    # ------------------------------------------------------------------
    # paper-default derived sizes
    # ------------------------------------------------------------------
    @property
    def intervals(self) -> int:
        """``|T|`` with the paper default ``3k/2`` when unset."""
        if self.n_intervals is not None:
            return self.n_intervals
        return max(1, (3 * self.k) // 2)

    @property
    def events(self) -> int:
        """``|E|`` with the paper default ``2k`` when unset."""
        if self.n_events is not None:
            return self.n_events
        return 2 * self.k

    @property
    def expected_competing_total(self) -> float:
        """Expected total number of competing events across intervals."""
        return self.intervals * self.mean_competing

    @property
    def required_pool_events(self) -> int:
        """EBSN event-pool size needed to materialize this config.

        Candidate events plus the worst-case competing draw (the uniform
        per-interval count tops out at ``2 * mean``), with 10% slack.
        """
        worst_competing = int(self.intervals * 2.0 * self.mean_competing) + 1
        return int(1.1 * (self.events + worst_competing)) + 10

    # ------------------------------------------------------------------
    def with_k(self, k: int) -> "ExperimentConfig":
        """Copy at a different ``k`` (derived sizes stay paper-default)."""
        return replace(self, k=k)

    def with_intervals(self, n_intervals: int) -> "ExperimentConfig":
        """Copy pinning ``|T|`` explicitly."""
        return replace(self, n_intervals=n_intervals)

    def at_meetup_scale(self) -> "ExperimentConfig":
        """Copy with the full 42,444-user Meetup population."""
        return replace(self, n_users=MEETUP_USERS)

    def with_backend(self, interest_backend: str) -> "ExperimentConfig":
        """Copy with a different ``mu`` storage backend."""
        return replace(self, interest_backend=interest_backend)

    def label(self) -> str:
        return (
            f"k={self.k} |T|={self.intervals} |E|={self.events} "
            f"users={self.n_users}"
        )
