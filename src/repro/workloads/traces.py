"""Trace generation: seeded change streams derived from experiment configs.

A :class:`TraceGenerator` turns an
:class:`~repro.workloads.config.ExperimentConfig` (which pins the
instance shape: users, events, intervals, locations, xi distribution)
plus a :class:`TraceConfig` (which pins the *stream* shape: op mix,
payload sparsity, pacing) into a replayable
:class:`~repro.stream.trace.Trace`.

All randomness descends from one root seed via
:class:`~repro.utils.rng.SeedSequenceFactory` spawning — one child stream
for op-kind choices, one for payloads, one for timestamps — so the same
``(config, trace_config, root_seed)`` triple always yields the identical
trace, independent of anything generated before it.

The generator simulates the live index space while sampling: a
:class:`~repro.stream.trace.CancelEvent` renumbers subsequent events
exactly like the incremental scheduler does, so every sampled index is
valid at its op's replay position.  Interest payloads are sparse
``(user, value)`` entries with an expected density knob, matching the
Jaccard-mined sparsity regime the sparse backend is built for.

Generated traces carry their starting shape (``n_events`` /
``n_intervals``), which arms :class:`~repro.stream.trace.Trace`'s
replayability validation: every emitted trace is checked op by op (live
index space, budget monotonicity, no duplicate live names) and a
sampling bug here would surface as a
:class:`~repro.core.errors.TraceError` at generation time rather than as
a corrupted replay.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.stream.trace import (
    AnnounceRival,
    ArriveCandidate,
    CancelEvent,
    ChangeOp,
    DriftInterest,
    RaiseBudget,
    Trace,
)
from repro.utils.rng import SeedSequenceFactory
from repro.workloads.config import ExperimentConfig

__all__ = ["TraceConfig", "TraceGenerator"]


@dataclass(frozen=True)
class TraceConfig:
    """Shape of a generated change stream.

    The four ``*_rate`` knobs are relative intensities (they are
    normalized into a categorical distribution over op kinds), mirroring
    the arrival-rate / cancellation / rival-intensity framing of the
    streaming scenario; ``budget_rate`` adds occasional budget growth.
    """

    n_ops: int = 50
    arrival_rate: float = 1.0
    cancel_rate: float = 0.5
    rival_rate: float = 0.5
    drift_rate: float = 0.25
    budget_rate: float = 0.1
    #: Expected fraction of users with nonzero interest per sampled column.
    interest_density: float = 0.02
    #: Mean exponential gap between consecutive op timestamps.
    mean_interarrival: float = 1.0
    #: ``k`` growth per budget op.
    budget_step: int = 1
    #: Never cancel below this many live candidate events.
    min_live_events: int = 2

    def __post_init__(self) -> None:
        if self.n_ops < 0:
            raise ValueError(f"n_ops must be non-negative, got {self.n_ops}")
        rates = {
            "arrival_rate": self.arrival_rate,
            "cancel_rate": self.cancel_rate,
            "rival_rate": self.rival_rate,
            "drift_rate": self.drift_rate,
            "budget_rate": self.budget_rate,
        }
        for name, rate in rates.items():
            if rate < 0:
                raise ValueError(f"{name} must be non-negative, got {rate}")
        if sum(rates.values()) <= 0:
            raise ValueError("at least one op rate must be positive")
        if not 0.0 < self.interest_density <= 1.0:
            raise ValueError(
                f"interest_density must lie in (0, 1], got "
                f"{self.interest_density}"
            )
        if self.mean_interarrival <= 0:
            raise ValueError(
                f"mean_interarrival must be positive, got "
                f"{self.mean_interarrival}"
            )
        if self.budget_step <= 0:
            raise ValueError(
                f"budget_step must be positive, got {self.budget_step}"
            )
        if self.min_live_events < 1:
            raise ValueError(
                f"min_live_events must be at least 1, got "
                f"{self.min_live_events}"
            )


#: Op kinds in sampling order (fixed: part of the deterministic contract).
_KINDS = ("arrive", "cancel", "rival", "drift", "budget")


class TraceGenerator:
    """Samples seeded, replayable change traces for one experiment config."""

    def __init__(
        self,
        config: ExperimentConfig,
        trace_config: TraceConfig | None = None,
        root_seed: int = 0,
    ):
        self._config = config
        self._trace_config = trace_config or TraceConfig()
        self._root_seed = root_seed

    @property
    def config(self) -> ExperimentConfig:
        return self._config

    @property
    def trace_config(self) -> TraceConfig:
        return self._trace_config

    @property
    def root_seed(self) -> int:
        return self._root_seed

    # ------------------------------------------------------------------
    def generate(self, n_ops: int | None = None) -> Trace:
        """Sample one trace (``n_ops`` overrides the configured length)."""
        spec = self._trace_config
        count = spec.n_ops if n_ops is None else n_ops
        if count < 0:
            raise ValueError(f"n_ops must be non-negative, got {count}")
        seeds = SeedSequenceFactory(self._root_seed)
        kind_rng = seeds.spawn()
        payload_rng = seeds.spawn()
        time_rng = seeds.spawn()

        weights = np.array(
            [
                spec.arrival_rate,
                spec.cancel_rate,
                spec.rival_rate,
                spec.drift_rate,
                spec.budget_rate,
            ]
        )
        weights = weights / weights.sum()

        n_live = self._config.events  # live candidate-event count
        k = self._config.k
        clock = 0.0
        ops: list[ChangeOp] = []
        for _ in range(count):
            clock += float(time_rng.exponential(spec.mean_interarrival))
            kind = _KINDS[int(kind_rng.choice(len(_KINDS), p=weights))]
            if kind == "cancel" and n_live <= spec.min_live_events:
                kind = "arrive"  # keep the pool alive; arrivals are the dual
            op = self._sample_op(kind, clock, n_live, k, payload_rng)
            ops.append(op)
            if kind == "arrive":
                n_live += 1
            elif kind == "cancel":
                n_live -= 1
            elif kind == "budget":
                k += spec.budget_step
        return Trace(
            ops=tuple(ops),
            n_users=self._config.n_users,
            initial_k=self._config.k,
            n_events=self._config.events,
            n_intervals=self._config.intervals,
            seed=self._root_seed,
            label=f"{self._config.label()} ops={count}",
        )

    # ------------------------------------------------------------------
    def _sample_op(
        self,
        kind: str,
        clock: float,
        n_live: int,
        k: int,
        rng: np.random.Generator,
    ) -> ChangeOp:
        spec = self._trace_config
        if kind == "arrive":
            return ArriveCandidate(
                time=clock,
                location=int(rng.integers(self._config.n_locations)),
                required_resources=float(rng.uniform(*self._config.xi_range)),
                interest=self._sample_entries(rng),
            )
        if kind == "cancel":
            return CancelEvent(time=clock, event=int(rng.integers(n_live)))
        if kind == "rival":
            return AnnounceRival(
                time=clock,
                interval=int(rng.integers(self._config.intervals)),
                interest=self._sample_entries(rng),
            )
        if kind == "drift":
            return DriftInterest(
                time=clock,
                event=int(rng.integers(n_live)),
                interest=self._sample_entries(rng),
            )
        return RaiseBudget(time=clock, new_k=k + spec.budget_step)

    def _sample_entries(self, rng: np.random.Generator):
        """One sparse interest column as sorted ``(user, value)`` entries."""
        n_users = self._config.n_users
        nnz = int(rng.binomial(n_users, self._trace_config.interest_density))
        nnz = max(1, min(n_users, nnz))
        users = np.sort(rng.choice(n_users, size=nnz, replace=False))
        values = rng.uniform(0.0, 1.0, size=nnz)
        # open interval (0, 1]: an exact zero would be a non-entry
        values = 1.0 - values
        return tuple(
            (int(user), float(value)) for user, value in zip(users, values)
        )
