"""Workload generator: experiment configs -> concrete SES instances.

Each :class:`~repro.workloads.config.ExperimentConfig` is materialized in
two steps, mirroring the paper: a Meetup-like EBSN snapshot supplies the
event pool / tags / check-ins, then the Section IV.A preprocessing
(:func:`repro.data.meetup.build_instance`) cuts an SES instance out of it.

One snapshot is cached and shared across a sweep — just as the paper uses
one Meetup dump for all grid points — and regenerated only if a later
config needs a larger event pool.  All randomness descends from the
generator's root seed via :class:`~repro.utils.rng.SeedSequenceFactory`,
so grid point ``i`` is reproducible regardless of what ran before it.
"""

from __future__ import annotations

import numpy as np

from repro.core.instance import SESInstance
from repro.data.meetup import InstanceBuildParams, build_instance
from repro.ebsn.generator import EBSNConfig, GeneratedEBSN, MeetupStyleGenerator
from repro.utils.rng import SeedSequenceFactory
from repro.workloads.config import ExperimentConfig

__all__ = ["WorkloadGenerator"]


class WorkloadGenerator:
    """Materializes SES instances for experiment configs, reusing one EBSN."""

    def __init__(self, root_seed: int = 0):
        self._root_seed = root_seed
        self._seeds = SeedSequenceFactory(root_seed)
        self._snapshot: GeneratedEBSN | None = None
        self._snapshot_rng: np.random.Generator | None = None

    @property
    def root_seed(self) -> int:
        return self._root_seed

    # ------------------------------------------------------------------
    def snapshot_for(self, config: ExperimentConfig) -> GeneratedEBSN:
        """The shared EBSN snapshot, (re)generated to cover ``config``.

        The snapshot is regenerated only when the cached one has too few
        users or pool events; sweeps should therefore present their
        *largest* config first (the sweep helpers do) so all points share
        identical data.
        """
        needed_events = config.required_pool_events
        snapshot = self._snapshot
        if (
            snapshot is None
            or snapshot.network.n_events < needed_events
            or snapshot.network.n_users < config.n_users
        ):
            if self._snapshot_rng is None:
                self._snapshot_rng = self._seeds.spawn()
            ebsn_config = EBSNConfig(
                n_users=max(config.n_users, 100),
                n_groups=max(20, config.n_users // 25),
                n_events=needed_events,
            )
            snapshot = MeetupStyleGenerator(ebsn_config).generate(
                seed=self._snapshot_rng
            )
            self._snapshot = snapshot
        return snapshot

    def build(
        self,
        config: ExperimentConfig,
        seed: int | np.random.Generator | None = None,
    ) -> SESInstance:
        """Materialize one SES instance for ``config``.

        ``seed`` overrides the internally spawned per-call stream (useful
        for repeated-trial experiments over the same snapshot).
        """
        snapshot = self.snapshot_for(config)
        params = InstanceBuildParams(
            n_candidate_events=config.events,
            n_intervals=config.intervals,
            mean_competing_per_interval=config.mean_competing,
            n_locations=config.n_locations,
            theta=config.theta,
            xi_range=config.xi_range,
            sigma_source=config.sigma_source,
            interest_backend=config.interest_backend,
        )
        if seed is None:
            seed = self._seeds.spawn()
        instance = build_instance(snapshot, params, seed=seed)
        if config.n_users < instance.n_users:
            instance = _restrict_users(instance, config.n_users)
        return instance


def _restrict_users(instance: SESInstance, n_users: int) -> SESInstance:
    """Cut an instance down to its first ``n_users`` users.

    The EBSN snapshot may be shared by configs with different user counts;
    slicing the user axis keeps matrices consistent without regenerating.
    The interest backend is preserved — a sparse ``mu`` stays sparse.
    """
    from repro.core.activity import ActivityModel

    interest = instance.interest.restrict_users(n_users)
    activity = ActivityModel(instance.activity.matrix[:n_users])
    return SESInstance(
        users=instance.users[:n_users],
        intervals=instance.intervals,
        events=instance.events,
        competing=instance.competing,
        interest=interest,
        activity=activity,
        organizer=instance.organizer,
    )
