"""Workload generator: experiment configs -> concrete SES instances.

Each :class:`~repro.workloads.config.ExperimentConfig` is materialized in
two steps, mirroring the paper: a Meetup-like EBSN snapshot supplies the
event pool / tags / check-ins, then the Section IV.A preprocessing
(:func:`repro.data.meetup.build_instance`) cuts an SES instance out of it.

One snapshot is cached and shared across a sweep — just as the paper uses
one Meetup dump for all grid points — and regenerated only if a later
config needs a larger event pool.  All randomness descends from the
generator's root seed via :class:`~repro.utils.rng.SeedSequenceFactory`,
so grid point ``i`` is reproducible regardless of what ran before it.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.core.instance import SESInstance
from repro.data.meetup import InstanceBuildParams, build_instance
from repro.ebsn.generator import EBSNConfig, GeneratedEBSN, MeetupStyleGenerator
from repro.utils.rng import SeedSequenceFactory
from repro.workloads.config import ExperimentConfig

__all__ = ["WorkloadGenerator", "synthesize_sharded_instance"]


class WorkloadGenerator:
    """Materializes SES instances for experiment configs, reusing one EBSN."""

    def __init__(self, root_seed: int = 0):
        self._root_seed = root_seed
        self._seeds = SeedSequenceFactory(root_seed)
        self._snapshot: GeneratedEBSN | None = None
        self._snapshot_rng: np.random.Generator | None = None

    @property
    def root_seed(self) -> int:
        return self._root_seed

    # ------------------------------------------------------------------
    def snapshot_for(self, config: ExperimentConfig) -> GeneratedEBSN:
        """The shared EBSN snapshot, (re)generated to cover ``config``.

        The snapshot is regenerated only when the cached one has too few
        users or pool events; sweeps should therefore present their
        *largest* config first (the sweep helpers do) so all points share
        identical data.
        """
        needed_events = config.required_pool_events
        snapshot = self._snapshot
        if (
            snapshot is None
            or snapshot.network.n_events < needed_events
            or snapshot.network.n_users < config.n_users
        ):
            if self._snapshot_rng is None:
                self._snapshot_rng = self._seeds.spawn()
            ebsn_config = EBSNConfig(
                n_users=max(config.n_users, 100),
                n_groups=max(20, config.n_users // 25),
                n_events=needed_events,
            )
            snapshot = MeetupStyleGenerator(ebsn_config).generate(
                seed=self._snapshot_rng
            )
            self._snapshot = snapshot
        return snapshot

    def build(
        self,
        config: ExperimentConfig,
        seed: int | np.random.Generator | None = None,
    ) -> SESInstance:
        """Materialize one SES instance for ``config``.

        ``seed`` overrides the internally spawned per-call stream (useful
        for repeated-trial experiments over the same snapshot).
        """
        snapshot = self.snapshot_for(config)
        params = InstanceBuildParams(
            n_candidate_events=config.events,
            n_intervals=config.intervals,
            mean_competing_per_interval=config.mean_competing,
            n_locations=config.n_locations,
            theta=config.theta,
            xi_range=config.xi_range,
            sigma_source=config.sigma_source,
            interest_backend=config.interest_backend,
        )
        if seed is None:
            seed = self._seeds.spawn()
        instance = build_instance(snapshot, params, seed=seed)
        if config.n_users < instance.n_users:
            instance = _restrict_users(instance, config.n_users)
        return instance


def synthesize_sharded_instance(
    n_users: int,
    n_events: int = 64,
    n_intervals: int = 12,
    *,
    competing_per_interval: int = 2,
    density: float = 0.001,
    theta: float = 10.0,
    xi_range: tuple[float, float] = (1.0, 4.0),
    n_locations: int = 8,
    shards: int = 1,
    block_users: int | None = None,
    storage: str = "csc",
    directory: str | Path | None = None,
    seed: int = 0,
) -> SESInstance:
    """Synthesize a million-user-scale instance directly into shard blocks.

    Interest is sampled **per accumulation block** from RNG streams
    spawned in block order off one root seed
    (:meth:`~repro.shard.plan.ShardPlan.block_streams`), so the generated
    numbers are identical for any ``shards`` value and any worker
    scheduling — and no dense ``(n_users, n_events)`` array is ever
    materialized: each block's columns go straight into CSC (or float32
    dense/memmap) block storage.

    ``density`` is the expected fraction of nonzero ``mu`` entries per
    column (Binomial row counts per block).  ``storage``/``directory``
    follow :class:`~repro.shard.interest.ShardedInterest`.
    """
    from repro.core.activity import ActivityModel
    from repro.core.entities import (
        CandidateEvent,
        CompetingEvent,
        Organizer,
        TimeInterval,
        User,
    )
    from repro.shard.interest import ShardedInterest
    from repro.shard.plan import DEFAULT_BLOCK_USERS, ShardPlan

    try:
        from scipy import sparse as sp
    except ImportError as error:  # pragma: no cover - scipy is baked in
        raise ImportError("synthesize_sharded_instance requires scipy") from error

    if not 0.0 < density <= 1.0:
        raise ValueError(f"density must lie in (0, 1], got {density}")
    plan = ShardPlan(
        n_users=n_users,
        n_shards=shards,
        block_users=block_users or DEFAULT_BLOCK_USERS,
        seed=seed,
    )
    n_competing = competing_per_interval * n_intervals

    def _sample_csc(
        rng: np.random.Generator, rows_in_block: int, n_columns: int
    ):
        indices_parts: list[np.ndarray] = []
        data_parts: list[np.ndarray] = []
        indptr = np.zeros(n_columns + 1, dtype=np.intp)
        for column in range(n_columns):
            nnz = int(rng.binomial(rows_in_block, density))
            rows = np.sort(
                rng.choice(rows_in_block, size=nnz, replace=False)
            ).astype(np.intp)
            indices_parts.append(rows)
            data_parts.append(rng.uniform(0.05, 1.0, size=nnz))
            indptr[column + 1] = indptr[column] + nnz
        indices = (
            np.concatenate(indices_parts) if indices_parts else
            np.zeros(0, dtype=np.intp)
        )
        data = np.concatenate(data_parts) if data_parts else np.zeros(0)
        return sp.csc_matrix(
            (data, indices, indptr), shape=(rows_in_block, n_columns)
        )

    candidate_blocks = []
    competing_blocks = []
    sigma = np.empty((n_users, n_intervals))
    for block, stream in enumerate(plan.block_streams()):
        lo, hi = plan.block_bounds(block)
        candidate_blocks.append(_sample_csc(stream, hi - lo, n_events))
        competing_blocks.append(_sample_csc(stream, hi - lo, n_competing))
        sigma[lo:hi] = stream.uniform(0.0, 1.0, size=(hi - lo, n_intervals))
    interest = ShardedInterest.from_blocks(
        plan, candidate_blocks, competing_blocks, storage, directory=directory
    )

    entity_rng = np.random.default_rng(
        np.random.SeedSequence([seed, n_users, n_events]).generate_state(4)
    )
    xi = entity_rng.uniform(xi_range[0], xi_range[1], size=n_events)
    locations = entity_rng.integers(0, n_locations, size=n_events)
    return SESInstance(
        users=tuple(User(index=u) for u in range(n_users)),
        intervals=tuple(TimeInterval(index=t) for t in range(n_intervals)),
        events=tuple(
            CandidateEvent(
                index=e,
                location=int(locations[e]),
                required_resources=float(min(xi[e], theta)),
            )
            for e in range(n_events)
        ),
        competing=tuple(
            CompetingEvent(index=c, interval=c % n_intervals)
            for c in range(n_competing)
        ),
        interest=interest,  # type: ignore[arg-type]
        activity=ActivityModel(sigma),
        organizer=Organizer(resources=theta),
    )


def _restrict_users(instance: SESInstance, n_users: int) -> SESInstance:
    """Cut an instance down to its first ``n_users`` users.

    The EBSN snapshot may be shared by configs with different user counts;
    slicing the user axis keeps matrices consistent without regenerating.
    The interest backend is preserved — a sparse ``mu`` stays sparse.
    """
    from repro.core.activity import ActivityModel

    interest = instance.interest.restrict_users(n_users)
    activity = ActivityModel(instance.activity.matrix[:n_users])
    return SESInstance(
        users=instance.users[:n_users],
        intervals=instance.intervals,
        events=instance.events,
        competing=instance.competing,
        interest=interest,
        activity=activity,
        organizer=instance.organizer,
    )
