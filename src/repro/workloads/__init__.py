"""Workload generation: the paper's Section IV experimental design."""

from repro.workloads.config import (
    ExperimentConfig,
    MEETUP_USERS,
    PAPER_DEFAULT_K,
    PAPER_MAX_K,
)
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.sweeps import (
    PAPER_INTERVAL_FACTORS,
    PAPER_K_GRID,
    sweep_intervals,
    sweep_k,
)
from repro.workloads.traces import TraceConfig, TraceGenerator

__all__ = [
    "ExperimentConfig",
    "MEETUP_USERS",
    "PAPER_DEFAULT_K",
    "PAPER_INTERVAL_FACTORS",
    "PAPER_K_GRID",
    "PAPER_MAX_K",
    "TraceConfig",
    "TraceGenerator",
    "WorkloadGenerator",
    "sweep_intervals",
    "sweep_k",
]
