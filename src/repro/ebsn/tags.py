"""Tag vocabulary for the synthetic EBSN (Meetup-style).

Meetup tags ("topics") are organized around interest areas: a rock-climbing
group's tags cluster with hiking, not with machine learning.  The paper's
interest function is a Jaccard similarity over such tag sets, so the
*cluster structure* of tags is what shapes ``mu``'s distribution — users
overlap heavily with events from their own topic area and barely at all
with the rest.  :class:`TagVocabulary` models this: tags are partitioned
into topics, and tag-set sampling concentrates on a primary topic with a
configurable spill-over to others.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import ensure_rng

__all__ = ["TagVocabulary", "DEFAULT_TOPICS"]

#: Topic names loosely modeled on Meetup's category list; purely cosmetic
#: labels for generated tags, but keeping them human-readable makes example
#: output and debugging far friendlier than integer ids.
DEFAULT_TOPICS = (
    "music",
    "tech",
    "outdoors",
    "arts",
    "food",
    "sports",
    "games",
    "careers",
    "wellness",
    "languages",
)


class TagVocabulary:
    """A clustered tag universe with topic-biased sampling.

    Parameters
    ----------
    n_tags:
        Total number of distinct tags.
    topics:
        Topic labels; tags are dealt to topics round-robin so every topic
        has ``~ n_tags / len(topics)`` tags.
    """

    def __init__(self, n_tags: int = 200, topics: tuple[str, ...] = DEFAULT_TOPICS):
        if n_tags < len(topics):
            raise ValueError(
                f"need at least one tag per topic: n_tags={n_tags} < "
                f"{len(topics)} topics"
            )
        if not topics:
            raise ValueError("at least one topic is required")
        self._topics = tuple(topics)
        self._tags_by_topic: dict[str, list[str]] = {topic: [] for topic in topics}
        self._all_tags: list[str] = []
        for tag_index in range(n_tags):
            topic = topics[tag_index % len(topics)]
            tag = f"{topic}/{tag_index}"
            self._tags_by_topic[topic].append(tag)
            self._all_tags.append(tag)

    # ------------------------------------------------------------------
    @property
    def topics(self) -> tuple[str, ...]:
        return self._topics

    @property
    def all_tags(self) -> tuple[str, ...]:
        return tuple(self._all_tags)

    @property
    def n_tags(self) -> int:
        return len(self._all_tags)

    def tags_of_topic(self, topic: str) -> tuple[str, ...]:
        try:
            return tuple(self._tags_by_topic[topic])
        except KeyError:
            raise KeyError(
                f"unknown topic {topic!r}; available: {self._topics}"
            ) from None

    def topic_of_tag(self, tag: str) -> str:
        topic, __, __ = tag.partition("/")
        if topic not in self._tags_by_topic:
            raise KeyError(f"tag {tag!r} does not belong to this vocabulary")
        return topic

    # ------------------------------------------------------------------
    def sample_topic(self, rng: np.random.Generator) -> str:
        """Uniformly random topic."""
        return self._topics[int(rng.integers(len(self._topics)))]

    def sample_tagset(
        self,
        rng: np.random.Generator | int | None,
        size: int,
        primary_topic: str | None = None,
        focus: float = 0.8,
    ) -> frozenset[str]:
        """Draw ``size`` distinct tags, concentrated on one topic.

        ``focus`` is the probability that each tag comes from the primary
        topic (sampling without replacement within each pool); the rest
        spill uniformly over the whole vocabulary, which is what creates
        small-but-nonzero cross-topic Jaccard overlaps.
        """
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        if not 0.0 <= focus <= 1.0:
            raise ValueError(f"focus must lie in [0, 1], got {focus}")
        rng = ensure_rng(rng)
        if primary_topic is None:
            primary_topic = self.sample_topic(rng)
        primary_pool = list(self._tags_by_topic[primary_topic])
        chosen: set[str] = set()
        attempts = 0
        while len(chosen) < size and attempts < 20 * max(size, 1):
            attempts += 1
            if primary_pool and rng.random() < focus:
                tag = primary_pool[int(rng.integers(len(primary_pool)))]
            else:
                tag = self._all_tags[int(rng.integers(len(self._all_tags)))]
            chosen.add(tag)
        return frozenset(chosen)
