"""The EBSN object model: groups, members, events, RSVPs.

Event-based social networks (Liu et al., KDD 2012 — the paper's reference
[7]) couple an *online* layer (users joining groups) with an *offline*
layer (users RSVPing to / attending events).  This module holds the
container, :class:`EBSNetwork`, that the synthetic generator fills and the
SES instance builder consumes.

The graph structure is also exported as a :mod:`networkx` graph
(:meth:`EBSNetwork.to_networkx`) with typed nodes, for analysis and for
users who want to plug in their own mining (the paper's footnote 1 points
at event-based mining literature for estimating ``mu``/``sigma`` — our
Jaccard + check-in estimators are two such methods, but any graph method
can slot in here).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

__all__ = ["EBSNGroup", "EBSNUser", "EBSNEvent", "EBSNetwork"]


@dataclass(frozen=True, slots=True)
class EBSNGroup:
    """A Meetup-style group: organizes events, carries descriptive tags."""

    group_id: int
    tags: frozenset[str]
    name: str = ""

    @property
    def display_name(self) -> str:
        return self.name or f"group#{self.group_id}"


@dataclass(frozen=True, slots=True)
class EBSNUser:
    """A platform user: tag profile plus the groups they joined."""

    user_id: int
    tags: frozenset[str]
    groups: tuple[int, ...] = ()
    name: str = ""

    @property
    def display_name(self) -> str:
        return self.name or f"user#{self.user_id}"


@dataclass(frozen=True, slots=True)
class EBSNEvent:
    """A concrete event organized by a group.

    Following the paper's Section IV.A, an event's tags are *the tags of
    the group that organizes it* — that is exactly how the Meetup dataset
    is preprocessed before Jaccard interests are computed.  ``start_slot``
    and ``duration_slots`` place the event on a discrete time grid (slots
    are the atoms from which candidate intervals are built); ``venue`` is
    the location identifier used for spatio-temporal conflicts.
    """

    event_id: int
    group_id: int
    tags: frozenset[str]
    start_slot: int
    duration_slots: int = 1
    venue: int = 0
    name: str = ""

    def __post_init__(self) -> None:
        if self.duration_slots <= 0:
            raise ValueError(
                f"duration_slots must be positive, got {self.duration_slots}"
            )

    @property
    def end_slot(self) -> int:
        return self.start_slot + self.duration_slots

    def overlaps(self, other: "EBSNEvent") -> bool:
        """Temporal overlap on the slot grid (used by the 8.1 statistic)."""
        return self.start_slot < other.end_slot and other.start_slot < self.end_slot

    @property
    def display_name(self) -> str:
        return self.name or f"event#{self.event_id}"


@dataclass
class EBSNetwork:
    """A complete EBSN snapshot: users, groups, events and RSVP edges."""

    groups: list[EBSNGroup] = field(default_factory=list)
    users: list[EBSNUser] = field(default_factory=list)
    events: list[EBSNEvent] = field(default_factory=list)
    #: (user_id, event_id) RSVP/attendance edges — the offline layer.
    rsvps: list[tuple[int, int]] = field(default_factory=list)

    # ------------------------------------------------------------------
    @property
    def n_users(self) -> int:
        return len(self.users)

    @property
    def n_groups(self) -> int:
        return len(self.groups)

    @property
    def n_events(self) -> int:
        return len(self.events)

    def events_of_group(self, group_id: int) -> list[EBSNEvent]:
        return [event for event in self.events if event.group_id == group_id]

    def members_of_group(self, group_id: int) -> list[EBSNUser]:
        return [user for user in self.users if group_id in user.groups]

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Referential-integrity check; raises ValueError on dangling ids."""
        group_ids = {group.group_id for group in self.groups}
        user_ids = {user.user_id for user in self.users}
        event_ids = {event.event_id for event in self.events}
        for user in self.users:
            for group_id in user.groups:
                if group_id not in group_ids:
                    raise ValueError(
                        f"{user.display_name} references unknown group {group_id}"
                    )
        for event in self.events:
            if event.group_id not in group_ids:
                raise ValueError(
                    f"{event.display_name} references unknown group "
                    f"{event.group_id}"
                )
        for user_id, event_id in self.rsvps:
            if user_id not in user_ids:
                raise ValueError(f"RSVP references unknown user {user_id}")
            if event_id not in event_ids:
                raise ValueError(f"RSVP references unknown event {event_id}")

    def to_networkx(self) -> nx.Graph:
        """Export as a typed heterogeneous graph.

        Node keys are ``("user", id)``, ``("group", id)``, ``("event", id)``;
        edges are membership (user–group), organization (group–event) and
        RSVP (user–event).  Node attributes carry tags for downstream
        analysis.
        """
        graph = nx.Graph()
        for group in self.groups:
            graph.add_node(("group", group.group_id), tags=group.tags)
        for user in self.users:
            graph.add_node(("user", user.user_id), tags=user.tags)
            for group_id in user.groups:
                graph.add_edge(
                    ("user", user.user_id), ("group", group_id), kind="member"
                )
        for event in self.events:
            graph.add_node(
                ("event", event.event_id),
                tags=event.tags,
                start_slot=event.start_slot,
            )
            graph.add_edge(
                ("group", event.group_id),
                ("event", event.event_id),
                kind="organizes",
            )
        for user_id, event_id in self.rsvps:
            graph.add_edge(("user", user_id), ("event", event_id), kind="rsvp")
        return graph
