"""EBSN substrate: the Meetup-like data layer the paper's evaluation rests on.

Contents:

* :mod:`~repro.ebsn.tags` — clustered tag vocabulary;
* :mod:`~repro.ebsn.network` — groups/users/events/RSVPs object model
  (+ networkx export);
* :mod:`~repro.ebsn.jaccard` — the paper's Jaccard interest construction;
* :mod:`~repro.ebsn.checkins` — check-in histories and sigma estimation;
* :mod:`~repro.ebsn.generator` — calibrated synthetic Meetup-CA generator;
* :mod:`~repro.ebsn.stats` — the overlap/conflict statistics the paper
  measures during preprocessing.
"""

from repro.ebsn.checkins import CheckinHistory, simulate_checkins
from repro.ebsn.generator import (
    EBSNConfig,
    GeneratedEBSN,
    MEETUP_CA_EVENTS,
    MEETUP_CA_USERS,
    MEETUP_MEAN_OVERLAP,
    MeetupStyleGenerator,
    horizon_for_target_overlap,
)
from repro.ebsn.jaccard import jaccard, jaccard_matrix
from repro.ebsn.network import EBSNetwork, EBSNEvent, EBSNGroup, EBSNUser
from repro.ebsn.stats import (
    conflicting_pair_fraction,
    events_per_group_histogram,
    mean_overlapping_events,
    membership_histogram,
    summarize,
)
from repro.ebsn.tags import DEFAULT_TOPICS, TagVocabulary

__all__ = [
    "CheckinHistory",
    "DEFAULT_TOPICS",
    "EBSNConfig",
    "EBSNEvent",
    "EBSNGroup",
    "EBSNUser",
    "EBSNetwork",
    "GeneratedEBSN",
    "MEETUP_CA_EVENTS",
    "MEETUP_CA_USERS",
    "MEETUP_MEAN_OVERLAP",
    "MeetupStyleGenerator",
    "TagVocabulary",
    "conflicting_pair_fraction",
    "events_per_group_histogram",
    "horizon_for_target_overlap",
    "jaccard",
    "jaccard_matrix",
    "mean_overlapping_events",
    "membership_histogram",
    "simulate_checkins",
    "summarize",
]
