"""Dataset statistics mirroring the paper's preprocessing analysis.

Section IV.A derives two numbers from the Meetup dumps:

* "on average, 8.1 events are taking place during overlapping intervals" —
  which sets the competing-events-per-interval distribution, and
* the fraction of spatio-temporally conflicting event pairs — which sets
  the number of available locations (25).

:func:`mean_overlapping_events` and :func:`conflicting_pair_fraction`
compute exactly these statistics on any :class:`~repro.ebsn.network.EBSNetwork`,
so the synthetic generator's calibration is *measured*, not assumed.  The
remaining helpers summarize structural distributions for reports.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.ebsn.network import EBSNetwork

__all__ = [
    "mean_overlapping_events",
    "conflicting_pair_fraction",
    "membership_histogram",
    "events_per_group_histogram",
    "summarize",
]


def mean_overlapping_events(network: EBSNetwork) -> float:
    """Mean, over events, of the number of events running concurrently.

    Counts the event itself (an event always overlaps its own interval),
    so the floor is 1.0 and the paper's 8.1 means "an event shares its
    time window with ~7 others on average".  Computed with a sweep over
    slot boundaries: O(n log n + overlaps) instead of all-pairs.
    """
    events = network.events
    if not events:
        return 0.0
    # sweep: +1 at start, -1 at end; concurrency of event i is the number
    # of active intervals anywhere within [start_i, end_i)
    starts = np.array([event.start_slot for event in events])
    ends = np.array([event.end_slot for event in events])
    order = np.argsort(starts, kind="stable")

    total_overlaps = 0
    # events sorted by start; for each, count events starting before its
    # end that haven't ended before its start — two binary searches over
    # sorted starts/ends
    sorted_starts = np.sort(starts)
    sorted_ends = np.sort(ends)
    for index in range(len(events)):
        start, end = int(starts[index]), int(ends[index])
        began_before_my_end = np.searchsorted(sorted_starts, end, side="left")
        ended_before_my_start = np.searchsorted(sorted_ends, start, side="right")
        total_overlaps += int(began_before_my_end - ended_before_my_start)
    del order  # retained name for clarity of the sweep derivation
    return total_overlaps / len(events)


def conflicting_pair_fraction(network: EBSNetwork) -> float:
    """Fraction of event pairs that conflict both in time and venue.

    This is the statistic the paper uses (via She et al. [11]) to choose
    the number of available locations: more venues -> fewer conflicting
    pairs.  Computed exactly over pairs sharing a venue (events at
    different venues never conflict), which keeps it near-linear for
    realistic venue counts.
    """
    events = network.events
    n = len(events)
    if n < 2:
        return 0.0
    total_pairs = n * (n - 1) // 2
    by_venue: dict[int, list[int]] = {}
    for position, event in enumerate(events):
        by_venue.setdefault(event.venue, []).append(position)
    conflicts = 0
    for members in by_venue.values():
        for i, left in enumerate(members):
            for right in members[i + 1 :]:
                if events[left].overlaps(events[right]):
                    conflicts += 1
    return conflicts / total_pairs


def membership_histogram(network: EBSNetwork) -> dict[int, int]:
    """``{membership count: number of users}`` — the online-layer degrees."""
    return dict(Counter(len(user.groups) for user in network.users))


def events_per_group_histogram(network: EBSNetwork) -> dict[int, int]:
    """``{event count: number of groups}`` — organizer activity skew."""
    per_group = Counter(event.group_id for event in network.events)
    counts = Counter(per_group.get(group.group_id, 0) for group in network.groups)
    return dict(counts)


def summarize(network: EBSNetwork) -> dict[str, float]:
    """Headline numbers for reports and calibration tests."""
    memberships = [len(user.groups) for user in network.users]
    return {
        "n_users": float(network.n_users),
        "n_groups": float(network.n_groups),
        "n_events": float(network.n_events),
        "n_rsvps": float(len(network.rsvps)),
        "mean_overlap": mean_overlapping_events(network),
        "conflict_fraction": conflicting_pair_fraction(network),
        "mean_memberships": float(np.mean(memberships)) if memberships else 0.0,
    }
