"""Synthetic Meetup-style EBSN generator (the dataset substitution).

The paper evaluates on a Meetup California dump (Pham et al., ICDE 2015)
with 42,444 users and ~16K events.  That dump is not redistributable, so —
per the reproduction's substitution policy (DESIGN.md §4) — this module
generates a synthetic EBSN whose *relevant statistics* match what the
paper actually consumes:

* **interest structure** — events are tagged with their organizing group's
  tags and users carry tag profiles, so Jaccard interests are sparse,
  clustered by topic, and supported on [0, 1] like the real ones;
* **temporal overlap** — event start slots are spread over a horizon sized
  so that the mean number of events running during overlapping intervals
  matches the paper's measured **8.1** (this is what calibrates competing-
  event density in the experiments);
* **scale** — any size up to (and beyond) the full 42,444 x 16K shape via
  :meth:`EBSNConfig.meetup_california`.

Generation pipeline: tag vocabulary -> groups (tags, Zipf popularity) ->
users (tags, topic-biased memberships) -> events (organized by groups,
placed on the slot grid, assigned venues) -> RSVPs -> weekly check-in
histories (for the sigma estimator).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.ebsn.checkins import CheckinHistory, simulate_checkins
from repro.ebsn.network import EBSNetwork, EBSNEvent, EBSNGroup, EBSNUser
from repro.ebsn.tags import DEFAULT_TOPICS, TagVocabulary
from repro.utils.rng import ensure_rng

__all__ = [
    "EBSNConfig",
    "GeneratedEBSN",
    "MeetupStyleGenerator",
    "horizon_for_target_overlap",
]

#: The headline statistics of the paper's Meetup California dataset.
MEETUP_CA_USERS = 42_444
MEETUP_CA_EVENTS = 16_000
#: Mean events running during overlapping intervals, measured by the
#: authors across the two Meetup datasets of Pham et al.
MEETUP_MEAN_OVERLAP = 8.1


def horizon_for_target_overlap(
    n_events: int, mean_duration: float, target_overlap: float
) -> int:
    """Slots needed so the mean concurrent-event count hits ``target_overlap``.

    With starts uniform over ``H`` slots, two events of durations ``d_i``,
    ``d_j`` overlap with probability ``(d_i + d_j - 1) / H``; the expected
    number of events overlapping a given one (counting itself) is then
    ``1 + (n - 1)(2 * mean_duration - 1) / H``.  Solving for ``H`` gives
    the horizon below (clamped to at least 1).
    """
    if n_events <= 1:
        return 1
    if target_overlap <= 1.0:
        raise ValueError(
            f"target_overlap must exceed 1 (an event always overlaps itself), "
            f"got {target_overlap}"
        )
    width = 2.0 * mean_duration - 1.0
    return max(1, round((n_events - 1) * width / (target_overlap - 1.0)))


@dataclass(frozen=True)
class EBSNConfig:
    """Knobs of the synthetic EBSN; defaults give a laptop-size network."""

    n_users: int = 2_000
    n_groups: int = 80
    n_events: int = 600
    n_tags: int = 200
    topics: tuple[str, ...] = DEFAULT_TOPICS
    group_tag_count: tuple[int, int] = (4, 10)
    user_tag_count: tuple[int, int] = (3, 12)
    mean_memberships: float = 3.0
    max_memberships: int = 8
    #: probability that each sampled tag / joined group stays on-topic
    topic_focus: float = 0.8
    #: event durations are uniform over {1, ..., max_duration_slots}
    max_duration_slots: int = 2
    #: calibration target for the mean concurrent-event count
    target_overlap: float = MEETUP_MEAN_OVERLAP
    n_venues: int = 25
    #: weekly check-in grid (7 days x 3 day-parts) and observation window
    weekly_slots: int = 21
    observation_weeks: int = 26
    rsvp_probability: float = 0.15

    def __post_init__(self) -> None:
        if min(self.n_users, self.n_groups, self.n_events) <= 0:
            raise ValueError("n_users, n_groups and n_events must be positive")
        if self.group_tag_count[0] > self.group_tag_count[1]:
            raise ValueError(f"bad group_tag_count range {self.group_tag_count}")
        if self.user_tag_count[0] > self.user_tag_count[1]:
            raise ValueError(f"bad user_tag_count range {self.user_tag_count}")
        if self.max_duration_slots <= 0:
            raise ValueError(
                f"max_duration_slots must be positive, got {self.max_duration_slots}"
            )
        if not 0.0 <= self.rsvp_probability <= 1.0:
            raise ValueError(
                f"rsvp_probability must lie in [0, 1], got {self.rsvp_probability}"
            )

    @property
    def mean_duration(self) -> float:
        return (1 + self.max_duration_slots) / 2.0

    @property
    def horizon_slots(self) -> int:
        """Event-placement horizon implied by the overlap calibration."""
        return horizon_for_target_overlap(
            self.n_events, self.mean_duration, self.target_overlap
        )

    @classmethod
    def meetup_california(cls, scale: float = 1.0) -> "EBSNConfig":
        """The paper's dataset shape, optionally scaled down for quick runs.

        ``scale=1.0`` reproduces the full 42,444-user / 16K-event size;
        ``scale=0.05`` is a faithful thumbnail for tests and examples.
        """
        if not 0.0 < scale <= 1.0:
            raise ValueError(f"scale must lie in (0, 1], got {scale}")
        return cls(
            n_users=max(10, round(MEETUP_CA_USERS * scale)),
            n_groups=max(5, round(1_500 * scale)),
            n_events=max(10, round(MEETUP_CA_EVENTS * scale)),
            n_tags=max(len(DEFAULT_TOPICS), round(400 * max(scale, 0.25))),
        )

    def scaled(self, factor: float) -> "EBSNConfig":
        """A proportionally resized copy (users, groups, events)."""
        if factor <= 0:
            raise ValueError(f"factor must be positive, got {factor}")
        return replace(
            self,
            n_users=max(1, round(self.n_users * factor)),
            n_groups=max(1, round(self.n_groups * factor)),
            n_events=max(1, round(self.n_events * factor)),
        )


@dataclass(frozen=True)
class GeneratedEBSN:
    """Everything the generator produces in one pass."""

    network: EBSNetwork
    checkins: CheckinHistory
    vocabulary: TagVocabulary
    config: EBSNConfig

    @property
    def horizon_slots(self) -> int:
        return self.config.horizon_slots


class MeetupStyleGenerator:
    """Deterministic (seeded) generator of Meetup-like EBSN snapshots."""

    def __init__(self, config: EBSNConfig | None = None):
        self._config = config or EBSNConfig()

    @property
    def config(self) -> EBSNConfig:
        return self._config

    # ------------------------------------------------------------------
    def generate(self, seed: int | np.random.Generator | None = None) -> GeneratedEBSN:
        """Produce a full snapshot: network + check-ins + vocabulary."""
        rng = ensure_rng(seed)
        config = self._config
        vocabulary = TagVocabulary(n_tags=config.n_tags, topics=config.topics)

        groups, group_topics = self._make_groups(rng, vocabulary)
        group_weights = self._zipf_weights(config.n_groups, rng)
        users = self._make_users(rng, vocabulary, group_topics, group_weights)
        events = self._make_events(rng, groups, group_weights)
        rsvps = self._make_rsvps(rng, users, events)

        network = EBSNetwork(groups=groups, users=users, events=events, rsvps=rsvps)
        network.validate()

        checkins = self._make_checkins(rng, config)
        return GeneratedEBSN(
            network=network,
            checkins=checkins,
            vocabulary=vocabulary,
            config=config,
        )

    # ------------------------------------------------------------------
    def _make_groups(
        self, rng: np.random.Generator, vocabulary: TagVocabulary
    ) -> tuple[list[EBSNGroup], list[str]]:
        config = self._config
        groups: list[EBSNGroup] = []
        topics: list[str] = []
        low, high = config.group_tag_count
        for group_id in range(config.n_groups):
            topic = vocabulary.sample_topic(rng)
            size = int(rng.integers(low, high + 1))
            tags = vocabulary.sample_tagset(
                rng, size, primary_topic=topic, focus=config.topic_focus
            )
            groups.append(
                EBSNGroup(group_id=group_id, tags=tags, name=f"{topic}-group-{group_id}")
            )
            topics.append(topic)
        return groups, topics

    @staticmethod
    def _zipf_weights(count: int, rng: np.random.Generator) -> np.ndarray:
        """Zipf(1) popularity over a random permutation of ranks."""
        ranks = rng.permutation(count) + 1
        weights = 1.0 / ranks
        return weights / weights.sum()

    def _make_users(
        self,
        rng: np.random.Generator,
        vocabulary: TagVocabulary,
        group_topics: list[str],
        group_weights: np.ndarray,
    ) -> list[EBSNUser]:
        config = self._config
        by_topic: dict[str, list[int]] = {}
        for group_id, topic in enumerate(group_topics):
            by_topic.setdefault(topic, []).append(group_id)

        users: list[EBSNUser] = []
        low, high = config.user_tag_count
        for user_id in range(config.n_users):
            topic = vocabulary.sample_topic(rng)
            size = int(rng.integers(low, high + 1))
            tags = vocabulary.sample_tagset(
                rng, size, primary_topic=topic, focus=config.topic_focus
            )
            memberships = self._sample_memberships(
                rng, topic, by_topic, group_weights
            )
            users.append(
                EBSNUser(
                    user_id=user_id,
                    tags=tags,
                    groups=tuple(sorted(memberships)),
                )
            )
        return users

    def _sample_memberships(
        self,
        rng: np.random.Generator,
        topic: str,
        by_topic: dict[str, list[int]],
        group_weights: np.ndarray,
    ) -> set[int]:
        config = self._config
        wanted = 1 + int(rng.poisson(max(0.0, config.mean_memberships - 1)))
        wanted = min(wanted, config.max_memberships, config.n_groups)
        same_topic = by_topic.get(topic, [])
        memberships: set[int] = set()
        for _ in range(wanted * 4):
            if len(memberships) >= wanted:
                break
            if same_topic and rng.random() < config.topic_focus:
                pool = same_topic
                pool_weights = group_weights[same_topic]
                pool_weights = pool_weights / pool_weights.sum()
                group_id = int(rng.choice(pool, p=pool_weights))
            else:
                group_id = int(rng.choice(config.n_groups, p=group_weights))
            memberships.add(group_id)
        return memberships

    def _make_events(
        self,
        rng: np.random.Generator,
        groups: list[EBSNGroup],
        group_weights: np.ndarray,
    ) -> list[EBSNEvent]:
        config = self._config
        horizon = config.horizon_slots
        events: list[EBSNEvent] = []
        organizer_ids = rng.choice(
            config.n_groups, size=config.n_events, p=group_weights
        )
        for event_id in range(config.n_events):
            group = groups[int(organizer_ids[event_id])]
            duration = int(rng.integers(1, config.max_duration_slots + 1))
            start = int(rng.integers(horizon))
            events.append(
                EBSNEvent(
                    event_id=event_id,
                    group_id=group.group_id,
                    tags=group.tags,  # per the paper: events carry group tags
                    start_slot=start,
                    duration_slots=duration,
                    venue=int(rng.integers(config.n_venues)),
                )
            )
        return events

    def _make_rsvps(
        self,
        rng: np.random.Generator,
        users: list[EBSNUser],
        events: list[EBSNEvent],
    ) -> list[tuple[int, int]]:
        """Members RSVP to their groups' events with fixed probability."""
        config = self._config
        events_by_group: dict[int, list[int]] = {}
        for event in events:
            events_by_group.setdefault(event.group_id, []).append(event.event_id)
        rsvps: list[tuple[int, int]] = []
        for user in users:
            for group_id in user.groups:
                for event_id in events_by_group.get(group_id, ()):
                    if rng.random() < config.rsvp_probability:
                        rsvps.append((user.user_id, event_id))
        return rsvps

    def _make_checkins(
        self, rng: np.random.Generator, config: EBSNConfig
    ) -> CheckinHistory:
        """Simulate weekly check-ins from latent per-user rhythms.

        Each user has a base going-out rate (Beta-distributed) and a
        preference profile over weekly slots (Dirichlet), giving the
        sigma estimator genuine per-slot structure to recover.
        """
        base_rate = rng.beta(2.0, 2.0, size=config.n_users)
        profile = rng.dirichlet(
            np.full(config.weekly_slots, 0.7), size=config.n_users
        )
        propensity = np.clip(
            base_rate[:, None] * profile * config.weekly_slots / 3.0, 0.0, 1.0
        )
        return simulate_checkins(
            propensity, n_weeks=config.observation_weeks, seed=rng
        )
