"""Check-in histories and the sigma estimator.

The paper defines the social-activity probability ``sigma[u, t]`` as
estimable "by examining the user's past behavior (e.g., number of
check-ins)".  Its experiments then simply draw ``sigma ~ U[0, 1]``; this
module implements the *described* pipeline so examples and tests can
exercise it end-to-end:

1. :class:`CheckinHistory` accumulates per-user check-in counts over a
   recurring weekly grid of slots (e.g. 7 days x 3 day-parts = 21 slots);
2. :meth:`CheckinHistory.estimate_activity` turns counts into an
   :class:`~repro.core.activity.ActivityModel` through additive-smoothed
   frequencies (delegating to ``ActivityModel.from_checkin_rates``).

The synthetic generator simulates histories from latent per-user
"going-out" propensities, so the estimator has real structure to recover —
a user who mostly checks in on weekend evenings ends up with high sigma
exactly there.
"""

from __future__ import annotations

import numpy as np

from repro.core.activity import ActivityModel
from repro.utils.rng import ensure_rng

__all__ = ["CheckinHistory", "simulate_checkins"]


class CheckinHistory:
    """Per-user, per-slot check-in counts over an observation window."""

    def __init__(self, n_users: int, n_slots: int, n_weeks: int):
        if n_users <= 0 or n_slots <= 0:
            raise ValueError(
                f"n_users and n_slots must be positive, got {n_users}, {n_slots}"
            )
        if n_weeks <= 0:
            raise ValueError(f"n_weeks must be positive, got {n_weeks}")
        self._counts = np.zeros((n_users, n_slots), dtype=np.int64)
        self._n_weeks = n_weeks

    # ------------------------------------------------------------------
    @property
    def counts(self) -> np.ndarray:
        """Read-only view of the count matrix."""
        view = self._counts.view()
        view.setflags(write=False)
        return view

    @property
    def n_users(self) -> int:
        return self._counts.shape[0]

    @property
    def n_slots(self) -> int:
        return self._counts.shape[1]

    @property
    def n_weeks(self) -> int:
        return self._n_weeks

    def record(self, user: int, slot: int, count: int = 1) -> None:
        """Add ``count`` check-ins for ``user`` at ``slot``."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        self._counts[user, slot] += count

    def total_checkins(self) -> int:
        return int(self._counts.sum())

    # ------------------------------------------------------------------
    def estimate_activity(self, smoothing: float = 1.0) -> ActivityModel:
        """Estimate ``sigma`` from the recorded history.

        A user observed for ``n_weeks`` weeks who checked in ``c`` times at
        a weekly slot gets ``sigma ~ (c + s) / (n_weeks + 2 s)`` — the
        smoothed empirical frequency of being socially active there.
        """
        return ActivityModel.from_checkin_rates(
            self._counts, smoothing=smoothing, max_observations=self._n_weeks
        )


def simulate_checkins(
    propensity: np.ndarray,
    n_weeks: int,
    seed: int | np.random.Generator | None = None,
) -> CheckinHistory:
    """Simulate a history from latent per-(user, slot) activity probabilities.

    Each week, user ``u`` checks in at slot ``t`` with probability
    ``propensity[u, t]`` independently — a Bernoulli process whose
    frequency the estimator should (approximately) recover.  Used by tests
    to verify estimator consistency and by the generator to give every
    synthetic user a coherent behavioral rhythm.
    """
    propensity = np.asarray(propensity, dtype=float)
    if propensity.ndim != 2:
        raise ValueError(f"propensity must be 2-D, got shape {propensity.shape}")
    if (propensity < 0).any() or (propensity > 1).any():
        raise ValueError("propensity entries must lie in [0, 1]")
    rng = ensure_rng(seed)
    n_users, n_slots = propensity.shape
    history = CheckinHistory(n_users=n_users, n_slots=n_slots, n_weeks=n_weeks)
    # vectorized: draw all weeks at once and sum the Bernoulli outcomes
    draws = rng.random((n_weeks, n_users, n_slots)) < propensity[None, :, :]
    history._counts += draws.sum(axis=0, dtype=np.int64)
    return history
