"""Jaccard tag interest — the paper's ``mu`` construction (Section IV.A).

"In order to define the interest of a user to an event, we associate the
events with the tags of the group who organize it.  Then, we compute the
likeness value using Jaccard similarity over the user-event tags."

This module implements exactly that: ``mu(u, e) = |T_u ∩ T_e| / |T_u ∪ T_e|``
with the empty-union convention ``mu = 0``.  The bulk builder vectorizes
over a tag-index encoding so it scales to the full Meetup-CA shape
(42,444 users x 16K events) without quadratic Python loops.

Two bulk builders share that encoding:

* :func:`jaccard_matrix` — dense output, fine up to a few thousand users;
* :func:`jaccard_matrix_sparse` — CSC output holding only the nonzero
  similarities.  Jaccard is nonzero exactly where the tag intersection is
  nonzero, so the sparse intersection product ``U @ E.T`` already carries
  the exact support; the division happens entry-wise on stored values and
  a dense ``(users, events)`` array never exists.  Requires scipy.

Both produce bit-identical values on the stored entries (same membership
encoding, same ``inter / (|T_u| + |T_e| - inter)`` arithmetic), which the
test suite pins.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

try:  # scipy is an optional dependency (the "sparse" extra)
    from scipy import sparse as _sp
except ImportError:  # pragma: no cover - exercised only without scipy
    _sp = None

__all__ = ["jaccard", "jaccard_matrix", "jaccard_matrix_sparse"]


def jaccard(left: frozenset[str] | set[str], right: frozenset[str] | set[str]) -> float:
    """Jaccard similarity of two tag sets; 0 when both are empty."""
    if not left and not right:
        return 0.0
    intersection = len(left & right)
    if intersection == 0:
        return 0.0
    return intersection / (len(left) + len(right) - intersection)


def _tag_vocabulary(
    users: list[frozenset[str]], events: list[frozenset[str]]
) -> dict[str, int]:
    """Deterministic tag -> column-index encoding shared by both builders."""
    vocabulary: dict[str, int] = {}
    for tagset in users:
        for tag in tagset:
            vocabulary.setdefault(tag, len(vocabulary))
    for tagset in events:
        for tag in tagset:
            vocabulary.setdefault(tag, len(vocabulary))
    return vocabulary


def jaccard_matrix(
    user_tagsets: Sequence[Iterable[str]],
    event_tagsets: Sequence[Iterable[str]],
) -> np.ndarray:
    """All-pairs Jaccard similarities as an ``(n_users, n_events)`` matrix.

    Tags are mapped to indices and each side becomes a sparse 0/1
    membership matrix; then ``intersection = U @ E.T`` and the union
    follows from set-size sums, so the whole computation is three BLAS-able
    operations instead of ``n_users * n_events`` Python-level set ops.
    """
    users = [frozenset(tags) for tags in user_tagsets]
    events = [frozenset(tags) for tags in event_tagsets]
    vocabulary = _tag_vocabulary(users, events)

    if not vocabulary or not users or not events:
        return np.zeros((len(users), len(events)))

    user_membership = np.zeros((len(users), len(vocabulary)), dtype=np.float64)
    for row, tagset in enumerate(users):
        for tag in tagset:
            user_membership[row, vocabulary[tag]] = 1.0
    event_membership = np.zeros((len(events), len(vocabulary)), dtype=np.float64)
    for row, tagset in enumerate(events):
        for tag in tagset:
            event_membership[row, vocabulary[tag]] = 1.0

    intersection = user_membership @ event_membership.T
    user_sizes = user_membership.sum(axis=1, keepdims=True)
    event_sizes = event_membership.sum(axis=1, keepdims=True).T
    union = user_sizes + event_sizes - intersection
    return np.divide(
        intersection,
        union,
        out=np.zeros_like(intersection),
        where=union > 0.0,
    )


def _membership_csr(tagsets: list[frozenset[str]], vocabulary: dict[str, int]):
    """0/1 membership as a CSR matrix of shape ``(len(tagsets), |vocab|)``."""
    rows = np.fromiter(
        (row for row, tags in enumerate(tagsets) for _ in tags), dtype=np.intp
    )
    cols = np.fromiter(
        (vocabulary[tag] for tags in tagsets for tag in tags), dtype=np.intp
    )
    return _sp.csr_matrix(
        (np.ones(rows.size), (rows, cols)),
        shape=(len(tagsets), len(vocabulary)),
    )


def jaccard_matrix_sparse(
    user_tagsets: Sequence[Iterable[str]],
    event_tagsets: Sequence[Iterable[str]],
):
    """All-pairs Jaccard similarities as a scipy CSC matrix.

    ``jaccard(u, e) > 0`` iff the tag sets intersect, so the sparse
    intersection count ``U @ E.T`` already has exactly the right support;
    each stored count ``inter`` becomes ``inter / (|T_u| + |T_e| - inter)``
    in place.  Values equal :func:`jaccard_matrix` bit-for-bit; memory is
    O(nnz) instead of O(users * events).
    """
    if _sp is None:  # pragma: no cover - exercised only without scipy
        raise ImportError(
            "jaccard_matrix_sparse requires scipy; install the 'sparse' "
            "extra (pip install ses-repro[sparse]) or use jaccard_matrix"
        )
    users = [frozenset(tags) for tags in user_tagsets]
    events = [frozenset(tags) for tags in event_tagsets]
    vocabulary = _tag_vocabulary(users, events)

    if not vocabulary or not users or not events:
        return _sp.csc_matrix((len(users), len(events)))

    user_membership = _membership_csr(users, vocabulary)
    event_membership = _membership_csr(events, vocabulary)
    user_sizes = np.asarray([len(tags) for tags in users], dtype=np.float64)
    event_sizes = np.asarray([len(tags) for tags in events], dtype=np.float64)

    intersection = (user_membership @ event_membership.T).tocoo()
    union = user_sizes[intersection.row] + event_sizes[intersection.col]
    union -= intersection.data
    similarity = _sp.coo_matrix(
        (intersection.data / union, (intersection.row, intersection.col)),
        shape=(len(users), len(events)),
    ).tocsc()
    similarity.sort_indices()
    return similarity
