"""Jaccard tag interest — the paper's ``mu`` construction (Section IV.A).

"In order to define the interest of a user to an event, we associate the
events with the tags of the group who organize it.  Then, we compute the
likeness value using Jaccard similarity over the user-event tags."

This module implements exactly that: ``mu(u, e) = |T_u ∩ T_e| / |T_u ∪ T_e|``
with the empty-union convention ``mu = 0``.  The bulk builder vectorizes
over a tag-index encoding so it scales to the full Meetup-CA shape
(42,444 users x 16K events) without quadratic Python loops.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

__all__ = ["jaccard", "jaccard_matrix"]


def jaccard(left: frozenset[str] | set[str], right: frozenset[str] | set[str]) -> float:
    """Jaccard similarity of two tag sets; 0 when both are empty."""
    if not left and not right:
        return 0.0
    intersection = len(left & right)
    if intersection == 0:
        return 0.0
    return intersection / (len(left) + len(right) - intersection)


def jaccard_matrix(
    user_tagsets: Sequence[Iterable[str]],
    event_tagsets: Sequence[Iterable[str]],
) -> np.ndarray:
    """All-pairs Jaccard similarities as an ``(n_users, n_events)`` matrix.

    Tags are mapped to indices and each side becomes a sparse 0/1
    membership matrix; then ``intersection = U @ E.T`` and the union
    follows from set-size sums, so the whole computation is three BLAS-able
    operations instead of ``n_users * n_events`` Python-level set ops.
    """
    users = [frozenset(tags) for tags in user_tagsets]
    events = [frozenset(tags) for tags in event_tagsets]
    vocabulary: dict[str, int] = {}
    for tagset in users:
        for tag in tagset:
            vocabulary.setdefault(tag, len(vocabulary))
    for tagset in events:
        for tag in tagset:
            vocabulary.setdefault(tag, len(vocabulary))

    if not vocabulary or not users or not events:
        return np.zeros((len(users), len(events)))

    user_membership = np.zeros((len(users), len(vocabulary)), dtype=np.float64)
    for row, tagset in enumerate(users):
        for tag in tagset:
            user_membership[row, vocabulary[tag]] = 1.0
    event_membership = np.zeros((len(events), len(vocabulary)), dtype=np.float64)
    for row, tagset in enumerate(events):
        for tag in tagset:
            event_membership[row, vocabulary[tag]] = 1.0

    intersection = user_membership @ event_membership.T
    user_sizes = user_membership.sum(axis=1, keepdims=True)
    event_sizes = event_membership.sum(axis=1, keepdims=True).T
    union = user_sizes + event_sizes - intersection
    return np.divide(
        intersection,
        union,
        out=np.zeros_like(intersection),
        where=union > 0.0,
    )
