"""registry-completeness: every Scheduler subclass registers itself.

The CLI's ``--solver`` choices, ``paper_methods``, the session facade
and the stream policies all derive their solver lists from the
:data:`~repro.algorithms.registry.solver_registry`; a ``Scheduler``
subclass that forgets ``@register_solver`` exists but is unreachable
from every entry point — the exact divergence the registry was built to
end.  The runtime completeness test only covers modules it imports; this
rule checks the declaration in every ``algorithms/`` module statically.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.astutil import base_names, decorator_names
from repro.analysis.engine import Finding, Project, Rule, SourceModule

__all__ = ["RegistryCompletenessRule"]

#: The solver base class whose concrete subclasses must register.
SCHEDULER_BASE = "Scheduler"

#: algorithms/ files that declare no solvers (scaffolding / the registry).
EXEMPT_BASENAMES = ("__init__.py", "base.py", "registry.py")


def _is_abstract(node: ast.ClassDef) -> bool:
    if "ABC" in base_names(node):
        return True
    for statement in node.body:
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if "abstractmethod" in decorator_names(statement):
                return True
    return False


class RegistryCompletenessRule(Rule):
    name = "registry-completeness"
    rationale = (
        "a Scheduler subclass without @register_solver is invisible to the "
        "CLI, the session facade and the stream policies"
    )

    def check(
        self, module: SourceModule, project: Project
    ) -> Iterable[Finding]:
        parts = module.relpath.split("/")
        if "algorithms" not in parts[:-1] or parts[-1] in EXEMPT_BASENAMES:
            return
        classes = {
            node.name: node
            for node in ast.walk(module.tree)
            if isinstance(node, ast.ClassDef)
        }

        def scheduler_like(name: str, seen: frozenset[str]) -> bool:
            if name == SCHEDULER_BASE:
                return True
            node = classes.get(name)
            if node is None or name in seen:
                return False
            return any(
                scheduler_like(base, seen | {name})
                for base in base_names(node)
            )

        for node in classes.values():
            if node.name.startswith("_") or _is_abstract(node):
                continue
            if not any(
                scheduler_like(base, frozenset()) for base in base_names(node)
            ):
                continue
            if "register_solver" not in decorator_names(node):
                yield self.finding(
                    module,
                    node,
                    f"{node.name} subclasses {SCHEDULER_BASE} but is not "
                    f"decorated with @register_solver; it will be invisible "
                    f"to every registry-driven entry point",
                )
