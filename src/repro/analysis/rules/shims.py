"""no-internal-shims: production code keeps off the PR-2 deprecation shims.

``make_engine(instance, "kind")`` (string kind) and the ``engine_kind=``
keyword were kept as warning shims when :class:`EngineSpec` landed, for
external callers only.  Internal code reaching through them keeps the
shims load-bearing forever and emits DeprecationWarnings into our own
test output; this rule keeps the internal caller count at zero so the
shims can eventually be deleted in one PR.

Allowed spellings (the shim *plumbing* itself): forwarding a parameter
verbatim (``engine_kind=engine_kind``) and passing ``engine_kind=None``
(the neutral default).
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.astutil import tail
from repro.analysis.engine import Finding, Project, Rule, SourceModule

__all__ = ["NoInternalShimsRule"]


class NoInternalShimsRule(Rule):
    name = "no-internal-shims"
    rationale = (
        "internal callers of make_engine(instance, \"kind\") / engine_kind= "
        "keep the PR-2 deprecation shims load-bearing and spam warnings"
    )

    def check(
        self, module: SourceModule, project: Project
    ) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = tail(node.func)
            if (
                callee == "make_engine"
                and len(node.args) >= 2
                and isinstance(node.args[1], ast.Constant)
                and isinstance(node.args[1].value, str)
            ):
                yield self.finding(
                    module,
                    node,
                    f'make_engine(instance, "{node.args[1].value}") uses the '
                    f"deprecated string-kind shim; pass "
                    f'EngineSpec(kind="{node.args[1].value}")',
                )
            for keyword in node.keywords:
                if keyword.arg != "engine_kind":
                    continue
                value = keyword.value
                if isinstance(value, ast.Name) and value.id == "engine_kind":
                    continue  # shim plumbing: verbatim parameter forwarding
                if isinstance(value, ast.Constant) and value.value is None:
                    continue  # neutral default
                yield self.finding(
                    module,
                    node,
                    "engine_kind= is the deprecated stringly spelling; "
                    "pass engine=EngineSpec(kind=...)",
                )
