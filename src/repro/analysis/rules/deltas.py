"""delta-exhaustiveness: every delta dispatcher must handle every delta.

Engines, score planes and any future delta consumer dispatch on the
concrete :class:`~repro.core.live.LiveDelta` subtypes with ``isinstance``
chains.  When a sixth structural op lands (the ROADMAP's location
closures, co-scheduled hierarchies, ...), *every* consumer must grow a
branch — and a missed one silently falls through to a default or, worse,
an ``else: raise`` that only fires at runtime on the new op.  This rule
makes the compiler-style check: the set of delta subtypes is discovered
from the scanned sources (``repro/core/live.py``, plus any defined in
``repro/stream/trace.py``), and every dispatcher must either
isinstance-cover all of them or delegate wholesale to another dispatcher.

Two dispatcher shapes are recognized (:data:`DISPATCHER_NAMES`): classes
defining ``apply_delta`` (engines, planes), and ``localize_delta``
functions — the shard router
(:func:`repro.shard.engine.localize_delta`) that restricts a delta to one
user-block; a subtype it misses would silently never reach the shards it
touches.
"""

from __future__ import annotations

import ast
import importlib.util
from collections.abc import Iterable

from repro.analysis.astutil import base_names, tail
from repro.analysis.engine import Finding, Project, Rule, SourceModule

__all__ = ["DeltaExhaustivenessRule"]

#: The root of the delta hierarchy.
DELTA_BASE = "LiveDelta"

#: Modules (path suffixes) where delta subtypes are declared.
DELTA_MODULES = ("core/live.py", "stream/trace.py")

#: Function names that dispatch on the concrete delta subtypes.
DISPATCHER_NAMES = ("apply_delta", "localize_delta")


def discover_delta_leaves(project: Project) -> dict[str, frozenset[str]]:
    """Concrete delta subtypes -> the names that cover them in a dispatch.

    A leaf is covered by its own name or any of its ancestors up to (and
    including) :data:`DELTA_BASE`.  Discovery prefers the scanned
    project's own ``core/live.py`` / ``stream/trace.py`` (so fixture
    trees are self-contained); when the scan does not include one, the
    installed :mod:`repro.core.live` source is parsed instead.
    """
    trees = [module.tree for module in project.find_modules(*DELTA_MODULES)]
    if not trees:
        tree = _installed_tree("repro.core.live")
        if tree is None:
            return {}
        trees = [tree]
    parents: dict[str, list[str]] = {}
    for tree in trees:
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                parents[node.name] = base_names(node)

    def ancestors(name: str) -> set[str]:
        seen: set[str] = set()
        frontier = [name]
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(parents.get(current, []))
        return seen

    in_hierarchy = {
        name for name in parents if DELTA_BASE in ancestors(name)
    }
    subclassed = {
        base for name in in_hierarchy for base in parents.get(name, [])
    }
    leaves = sorted(in_hierarchy - subclassed - {DELTA_BASE})
    return {leaf: frozenset(ancestors(leaf)) for leaf in leaves}


def _installed_tree(module_name: str) -> ast.Module | None:
    try:
        spec = importlib.util.find_spec(module_name)
    except (ImportError, ValueError):  # pragma: no cover - defensive
        return None
    if spec is None or spec.origin is None:  # pragma: no cover - defensive
        return None
    try:
        with open(spec.origin, encoding="utf-8") as handle:
            return ast.parse(handle.read(), filename=spec.origin)
    except (OSError, SyntaxError):  # pragma: no cover - defensive
        return None


def _isinstance_targets(body: ast.FunctionDef) -> set[str]:
    """Every type name tested via ``isinstance(x, T)`` in the method."""
    targets: set[str] = set()
    for node in ast.walk(body):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "isinstance"
            and len(node.args) == 2
        ):
            continue
        spec = node.args[1]
        candidates = spec.elts if isinstance(spec, ast.Tuple) else [spec]
        for candidate in candidates:
            name = tail(candidate)
            if name is not None:
                targets.add(name)
    return targets


def _delegates(body: ast.FunctionDef) -> bool:
    """Whether the function forwards wholesale to another dispatcher."""
    for node in ast.walk(body):
        if not isinstance(node, ast.Call):
            continue
        callee = node.func
        if isinstance(callee, ast.Attribute):
            name = callee.attr
        elif isinstance(callee, ast.Name):
            name = callee.id
        else:
            continue
        if name in DISPATCHER_NAMES:
            return True
    return False


def _dispatchers(
    tree: ast.Module,
) -> Iterable[tuple[str | None, ast.FunctionDef | ast.AsyncFunctionDef]]:
    """Every dispatcher definition with its owning class name (or None).

    ``apply_delta`` only dispatches as a method; ``localize_delta`` may be
    a module-level router (the shard layer's is) or a method.
    """
    method_ids: set[int] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for member in node.body:
            if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                method_ids.add(id(member))
                if member.name in DISPATCHER_NAMES:
                    yield node.name, member
    for node in ast.walk(tree):
        if (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node.name in DISPATCHER_NAMES
            and id(node) not in method_ids
        ):
            yield None, node


class DeltaExhaustivenessRule(Rule):
    name = "delta-exhaustiveness"
    rationale = (
        "every delta dispatcher (apply_delta, localize_delta) must "
        "isinstance-cover all concrete LiveDelta subtypes, so adding a new "
        "structural op fails lint everywhere at once"
    )

    def check(
        self, module: SourceModule, project: Project
    ) -> Iterable[Finding]:
        leaves = discover_delta_leaves(project)
        if not leaves:
            return
        for owner, method in _dispatchers(module.tree):
            tested = _isinstance_targets(method)
            if not tested and _delegates(method):
                continue  # pure forwarding: the delegate is checked
            missing = sorted(
                leaf
                for leaf, covering in leaves.items()
                if not (tested & covering)
            )
            if missing:
                label = (
                    f"{owner}.{method.name}" if owner else method.name
                )
                yield self.finding(
                    module,
                    method,
                    f"{label} does not dispatch on "
                    f"{', '.join(missing)}; every concrete LiveDelta "
                    f"subtype needs a branch (or delegate wholesale)",
                )
