"""frozen-op-discipline: trace ops and API requests stay immutable values.

Traces are shared between policies, replayed repeatedly and hashed into
experiment records; requests are built once and replayed against many
sessions; organizer locks, gap reports and schedule versions
(:mod:`repro.interactive`) are handed to solvers and saved across solves
on exactly the same contract.  All of it dies the moment a dataclass in
those modules is declared without ``frozen=True`` or grows a
mutably-typed field (a list payload aliased between two replays corrupts
both).  The runtime suite only notices when an aliasing bug actually
fires; this rule pins the declaration itself.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.astutil import tail
from repro.analysis.engine import Finding, Project, Rule, SourceModule

__all__ = ["FrozenOpsRule"]

#: Path suffixes of modules whose dataclasses must be frozen values.
VALUE_MODULES = (
    "stream/trace.py",
    "api/requests.py",
    "interactive/locks.py",
    "interactive/gaps.py",
    "interactive/versions.py",
)

#: Type names that make a field mutable (shared-state hazards).
MUTABLE_TYPE_NAMES = frozenset(
    {
        "list",
        "dict",
        "set",
        "bytearray",
        "List",
        "Dict",
        "Set",
        "MutableMapping",
        "MutableSequence",
        "MutableSet",
        "ndarray",
    }
)


def _dataclass_decorator(node: ast.ClassDef) -> ast.expr | None:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if tail(target) == "dataclass":
            return decorator
    return None


def _is_frozen(decorator: ast.expr) -> bool:
    if not isinstance(decorator, ast.Call):
        return False  # bare @dataclass
    for keyword in decorator.keywords:
        if keyword.arg == "frozen":
            return (
                isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
            )
    return False


def _is_classvar(annotation: ast.expr) -> bool:
    target = (
        annotation.value
        if isinstance(annotation, ast.Subscript)
        else annotation
    )
    return tail(target) == "ClassVar"


class FrozenOpsRule(Rule):
    name = "frozen-op-discipline"
    rationale = (
        "trace ops, SolveRequest/SolveResponse and the interactive "
        "LockSet/gap/version dataclasses must be frozen=True with "
        "immutable field types — they are shared, replayed and hashed"
    )

    def check(
        self, module: SourceModule, project: Project
    ) -> Iterable[Finding]:
        if not module.matches(*VALUE_MODULES):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            decorator = _dataclass_decorator(node)
            if decorator is None:
                continue
            if not _is_frozen(decorator):
                yield self.finding(
                    module,
                    node,
                    f"dataclass {node.name} must be @dataclass(frozen=True) "
                    f"in this module (shared/replayed value objects)",
                )
            for statement in node.body:
                if not isinstance(statement, ast.AnnAssign):
                    continue
                if _is_classvar(statement.annotation):
                    continue
                mutable = sorted(
                    {
                        part.id
                        for part in ast.walk(statement.annotation)
                        if isinstance(part, ast.Name)
                        and part.id in MUTABLE_TYPE_NAMES
                    }
                    | {
                        part.attr
                        for part in ast.walk(statement.annotation)
                        if isinstance(part, ast.Attribute)
                        and part.attr in MUTABLE_TYPE_NAMES
                    }
                )
                if mutable:
                    target = statement.target
                    field_name = (
                        target.id if isinstance(target, ast.Name) else "?"
                    )
                    yield self.finding(
                        module,
                        statement,
                        f"{node.name}.{field_name} is annotated with mutable "
                        f"type(s) {', '.join(mutable)}; use an immutable "
                        f"counterpart (tuple / Mapping / frozenset)",
                    )
