"""freeze-ban: hot-path stream code must never materialize a snapshot.

PR 4's whole point was that the streaming hot path runs in O(delta) over
:class:`~repro.core.live.LiveInstance`; one careless ``.instance`` read
or ``.freeze()`` call reintroduces an O(instance) snapshot per op and
silently erases the 6-88x speedups the benchmarks pin.  Runtime tests
catch this only when the freeze counter assertion happens to cover the
offending path; this rule bans the *spelling* in the designated hot-path
modules.  Deliberate cold baselines (``PeriodicRebuildPolicy(warm=False)``)
and the cached :attr:`IncrementalScheduler.instance` property itself are
the allow-listed exceptions, marked with ``# ses-lint: disable=freeze-ban``
right at the site so every new exception shows up in review.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.engine import Finding, Project, Rule, SourceModule

__all__ = ["FreezeBanRule"]

#: Path suffixes of the modules where snapshots are banned.  The serve
#: hot path is held to the same standard: replica forks are O(cells)
#: copies and writer commits O(delta) patches, so the only legitimate
#: freeze is PlanePool.version_instance's per-generation cached one —
#: allow-listed at the site.
HOT_PATH_MODULES = (
    "stream/driver.py",
    "stream/policies.py",
    "algorithms/incremental.py",
    "serve/pool.py",
    "serve/session.py",
    # durability sits on the same per-op path: journal appends must be
    # O(delta); the only legitimate snapshots are the checkpoint writers,
    # allow-listed at the site
    "resilience/stream.py",
    "resilience/serve.py",
    "resilience/journal.py",
)


class FreezeBanRule(Rule):
    name = "freeze-ban"
    rationale = (
        "hot-path stream modules must stay O(delta): no .instance reads "
        "or .freeze() calls outside explicitly allow-listed sites"
    )

    def check(
        self, module: SourceModule, project: Project
    ) -> Iterable[Finding]:
        if not module.matches(*HOT_PATH_MODULES):
            return
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "freeze"
            ):
                yield self.finding(
                    module,
                    node,
                    ".freeze() materializes an O(instance) snapshot on a "
                    "hot-path module; read through .live instead",
                )
            elif (
                isinstance(node, ast.Attribute)
                and node.attr == "instance"
                and isinstance(node.ctx, ast.Load)
            ):
                yield self.finding(
                    module,
                    node,
                    ".instance is a cached freeze (O(instance) after any "
                    "mutation); hot-path code must read through .live",
                )
