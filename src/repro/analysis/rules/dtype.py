"""dtype-discipline: score/mass arrays stay full float64 precision.

Every correctness property this repo leans on — 1e-9 engine parity,
bit-identical warm/cold solves, golden-trace utilities reproduced to the
last ulp — is calibrated for float64 accumulation.  A drive-by
``dtype=np.float32`` on a score or mass path (tempting when chasing the
ROADMAP's million-user memory targets) passes every smoke test and then
fails parity suites intermittently at scale.  Low-precision storage is a
deliberate, sharded-aggregate design decision, not a local optimization:
this rule bans low-precision float dtypes in array construction inside
the designated score/mass modules.

The sharded design (:mod:`repro.shard`) draws the sanctioned line:
``shard/interest.py`` is the *storage* layer — float32 blocks are its
contract, every accessor upcasts to float64 at the gather boundary — so
it is deliberately **excluded** here, while the shard *compute* modules
(plan, executor, engine) are covered: a partial-score or mass array born
float32 there would poison the float64 merge.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.astutil import tail
from repro.analysis.engine import Finding, Project, Rule, SourceModule

__all__ = ["DtypeDisciplineRule"]

#: Path suffixes of the modules computing Eq. 1-4 scores and masses.
SCORE_PATH_MODULES = (
    "core/engine.py",
    "core/scoreplane.py",
    "core/interest.py",
    "core/live.py",
    "core/objective.py",
    "core/scoring.py",
    "algorithms/incremental.py",
    "serve/pool.py",
    "serve/session.py",
    # shard compute layer: partials/merges are float64; shard/interest.py
    # (the float32 storage layer) is the one sanctioned exemption
    "shard/plan.py",
    "shard/executor.py",
    "shard/engine.py",
)

#: numpy constructors and the position of their ``dtype`` parameter.
_CONSTRUCTOR_DTYPE_POS = {
    "array": 1,
    "asarray": 1,
    "ascontiguousarray": 1,
    "asfortranarray": 1,
    "zeros": 1,
    "ones": 1,
    "empty": 1,
    "arange": 4,
    "fromiter": 1,
    "full": 2,
    "zeros_like": 1,
    "ones_like": 1,
    "empty_like": 1,
    "full_like": 2,
}

#: dtype spellings below float64 precision.
LOW_PRECISION_NAMES = frozenset(
    {"float32", "float16", "single", "half", "f4", "f2", "<f4", "<f2"}
)


def _low_precision(node: ast.expr) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        if node.value in LOW_PRECISION_NAMES:
            return node.value
        return None
    name = tail(node)
    if name in LOW_PRECISION_NAMES:
        return name
    return None


class DtypeDisciplineRule(Rule):
    name = "dtype-discipline"
    rationale = (
        "score/mass paths are calibrated for float64; low-precision dtypes "
        "break the 1e-9 parity and bit-identical warm-solve contracts"
    )

    def check(
        self, module: SourceModule, project: Project
    ) -> Iterable[Finding]:
        if not module.matches(*SCORE_PATH_MODULES):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = tail(node.func)
            position = _CONSTRUCTOR_DTYPE_POS.get(callee or "")
            if position is None:
                continue
            dtype_expr: ast.expr | None = None
            for keyword in node.keywords:
                if keyword.arg == "dtype":
                    dtype_expr = keyword.value
            if dtype_expr is None and len(node.args) > position:
                dtype_expr = node.args[position]
            if dtype_expr is None:
                continue
            culprit = _low_precision(dtype_expr)
            if culprit is not None:
                yield self.finding(
                    module,
                    node,
                    f"np.{callee}(..., dtype={culprit}) constructs a "
                    f"low-precision array on a score/mass path; these are "
                    f"pinned to float64 by the parity/warm-solve contracts",
                )
