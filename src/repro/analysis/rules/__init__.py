"""The rule battery: one catalog of every repo invariant ses-lint enforces.

Mirrors the solver registry's design: each rule module declares one
:class:`~repro.analysis.engine.Rule` subclass, and this package is the
single list every entry point (CLI ``--rule`` choices, the pytest
suites, the CI gate, the README catalogue) derives from.
"""

from __future__ import annotations

from repro.analysis.engine import LintError, Rule
from repro.analysis.rules.deltas import DeltaExhaustivenessRule
from repro.analysis.rules.determinism import DeterminismRule
from repro.analysis.rules.dtype import DtypeDisciplineRule
from repro.analysis.rules.freeze import FreezeBanRule
from repro.analysis.rules.frozen_ops import FrozenOpsRule
from repro.analysis.rules.shims import NoInternalShimsRule
from repro.analysis.rules.solvers import RegistryCompletenessRule

__all__ = [
    "ALL_RULES",
    "RULE_NAMES",
    "default_rules",
    "resolve_rules",
]

#: Every shipped rule, in catalogue order.
ALL_RULES: tuple[type[Rule], ...] = (
    DeltaExhaustivenessRule,
    FreezeBanRule,
    FrozenOpsRule,
    RegistryCompletenessRule,
    DeterminismRule,
    NoInternalShimsRule,
    DtypeDisciplineRule,
)

#: Rule names, in catalogue order (CLI choices, docs).
RULE_NAMES: tuple[str, ...] = tuple(rule.name for rule in ALL_RULES)


def default_rules() -> list[Rule]:
    """Fresh instances of the full battery."""
    return [rule() for rule in ALL_RULES]


def resolve_rules(names: list[str] | None) -> list[Rule]:
    """Instances for ``names`` (full battery when ``None``/empty).

    Raises :class:`~repro.analysis.engine.LintError` on unknown names —
    the CLI maps that to the internal-error exit code 2, so a typo'd
    ``--rule`` can never masquerade as a clean run.
    """
    if not names:
        return default_rules()
    by_name = {rule.name: rule for rule in ALL_RULES}
    unknown = sorted(set(names) - set(by_name))
    if unknown:
        raise LintError(
            f"unknown rule(s) {', '.join(unknown)}; "
            f"choose from {', '.join(RULE_NAMES)}"
        )
    return [by_name[name]() for name in dict.fromkeys(names)]
