"""determinism: all randomness seeded, no set iteration into ordered output.

Bit-identical reproduction is this repo's core property: warm == cold
solves, replay determinism, golden traces, 1e-9 engine parity.  All of
it dies quietly if randomness sneaks in through the legacy module-level
numpy API (one hidden global stream), the stdlib ``random`` module,
wall-clock-seeded generators, or set iteration feeding ordered output
(hash-order varies across runs/processes; even a float ``sum`` over a
set is order-dependent at the ulp level).  Flagged patterns:

* ``np.random.<fn>(...)`` for any legacy module-level function
  (``seed``, ``rand``, ``shuffle``, ``RandomState``, ...); the sanctioned
  constructors (``default_rng``, ``Generator``, ``SeedSequence``,
  bit generators) are allowed — ``default_rng()`` *without* a seed is not;
* any call into the stdlib ``random`` module (except ``random.Random(seed)``
  with an explicit seed);
* ``time.time()`` appearing inside the arguments of an RNG constructor
  or seeding call;
* iterating a set into ordered output: ``for x in {...}``, comprehensions
  over set expressions, ``list()/tuple()/enumerate()/join()`` of one, or
  of a local name bound exactly once to one (``sorted(...)`` is the fix
  and is always allowed).
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.astutil import dotted, tail
from repro.analysis.engine import Finding, Project, Rule, SourceModule

__all__ = ["DeterminismRule"]

#: np.random attributes that are fine to call (explicitly-seeded API).
SANCTIONED_NP_RANDOM = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)

#: Calls whose arguments must not contain time.time() (seed laundering).
SEEDING_CALLS = frozenset(
    {"default_rng", "seed", "Random", "SeedSequence", "RandomState"}
)

#: Callables whose output order (or float accumulation order) follows the
#: iteration order of their argument.  ``sorted``/``min``/``max``/``any``/
#: ``all``/``len`` are order-independent and deliberately absent; ``sum``
#: is present because float addition is not associative.
_ORDERED_CONSUMERS = frozenset({"list", "tuple", "enumerate", "sum", "join"})


class _ImportMap:
    """Which local names refer to numpy, numpy.random and stdlib random."""

    def __init__(self, tree: ast.Module):
        self.numpy_aliases: set[str] = set()
        self.np_random_aliases: set[str] = set()
        self.stdlib_random_aliases: set[str] = set()
        self.stdlib_random_functions: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    if alias.name == "numpy" or alias.name.startswith("numpy."):
                        self.numpy_aliases.add(local)
                    if alias.name == "numpy.random" and alias.asname:
                        self.np_random_aliases.add(alias.asname)
                    if alias.name == "random":
                        self.stdlib_random_aliases.add(local)
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "numpy":
                    for alias in node.names:
                        if alias.name == "random":
                            self.np_random_aliases.add(
                                alias.asname or alias.name
                            )
                elif node.module == "random":
                    for alias in node.names:
                        self.stdlib_random_functions.add(
                            alias.asname or alias.name
                        )

    def is_np_random(self, node: ast.AST) -> bool:
        """Whether ``node`` denotes the numpy.random module object."""
        if isinstance(node, ast.Name):
            return node.id in self.np_random_aliases
        return (
            isinstance(node, ast.Attribute)
            and node.attr == "random"
            and isinstance(node.value, ast.Name)
            and node.value.id in self.numpy_aliases
        )


def _contains_wallclock(call: ast.Call) -> bool:
    for node in ast.walk(call):
        if node is call:
            continue
        if isinstance(node, ast.Call) and dotted(node.func) in (
            "time.time",
            "time.time_ns",
        ):
            return True
    return False


def _set_like(node: ast.AST, set_locals: set[str]) -> bool:
    """Whether an expression statically evaluates to a ``set``."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    ):
        return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _set_like(node.left, set_locals) or _set_like(
            node.right, set_locals
        )
    if isinstance(node, ast.Name):
        return node.id in set_locals
    return False


def _single_assignment_set_locals(scope: ast.AST) -> set[str]:
    """Local names bound exactly once in ``scope``, to a set expression."""
    assigned: dict[str, int] = {}
    set_bound: set[str] = set()
    for node in ast.walk(scope):
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        elif isinstance(node, (ast.AugAssign, ast.For)):
            targets = [node.target]
        for target in targets:
            for name_node in ast.walk(target):
                if isinstance(name_node, ast.Name):
                    assigned[name_node.id] = assigned.get(name_node.id, 0) + 1
                    if value is not None and _set_like(value, set()):
                        set_bound.add(name_node.id)
    return {name for name in set_bound if assigned.get(name) == 1}


class DeterminismRule(Rule):
    name = "determinism"
    rationale = (
        "all randomness flows through explicitly seeded generators and no "
        "set iteration feeds ordered output — replay determinism and "
        "bit-identical warm/cold solves depend on it"
    )

    def check(
        self, module: SourceModule, project: Project
    ) -> Iterable[Finding]:
        imports = _ImportMap(module.tree)
        yield from self._check_rng(module, imports)
        yield from self._check_set_iteration(module)

    # -- seeded-randomness checks ---------------------------------------
    def _check_rng(
        self, module: SourceModule, imports: _ImportMap
    ) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            callee = tail(func)
            if (
                isinstance(func, ast.Attribute)
                and imports.is_np_random(func.value)
            ):
                if callee not in SANCTIONED_NP_RANDOM:
                    yield self.finding(
                        module,
                        node,
                        f"np.random.{callee}() uses the legacy global "
                        f"stream; route randomness through a seeded "
                        f"np.random.default_rng(seed)",
                    )
                elif callee == "default_rng" and not (
                    node.args or node.keywords
                ):
                    yield self.finding(
                        module,
                        node,
                        "np.random.default_rng() without a seed is "
                        "non-reproducible; thread an explicit seed through",
                    )
            elif (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in imports.stdlib_random_aliases
            ):
                if not (callee == "Random" and (node.args or node.keywords)):
                    yield self.finding(
                        module,
                        node,
                        f"stdlib random.{callee}() is process-global and "
                        f"unseeded here; use np.random.default_rng(seed)",
                    )
            elif (
                isinstance(func, ast.Name)
                and func.id in imports.stdlib_random_functions
            ):
                yield self.finding(
                    module,
                    node,
                    f"{func.id}() (from the stdlib random module) bypasses "
                    f"the seeded-generator discipline",
                )
            if callee in SEEDING_CALLS and _contains_wallclock(node):
                yield self.finding(
                    module,
                    node,
                    "seeding an RNG from time.time() makes every run "
                    "unreproducible; take the seed as a parameter",
                )

    # -- set-iteration checks -------------------------------------------
    def _check_set_iteration(self, module: SourceModule) -> Iterable[Finding]:
        scopes: list[ast.AST] = [module.tree]
        scopes.extend(
            node
            for node in ast.walk(module.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        )
        flagged: set[int] = set()
        for scope in scopes:
            set_locals = _single_assignment_set_locals(scope)
            for node in ast.walk(scope):
                iterables: list[ast.expr] = []
                what = ""
                if isinstance(node, ast.For):
                    iterables, what = [node.iter], "a for loop"
                elif isinstance(node, (ast.ListComp, ast.DictComp)):
                    # a generator expression is judged by its consumer
                    # (sorted/min/max over a set are order-independent)
                    iterables = [comp.iter for comp in node.generators]
                    what = "a comprehension"
                elif isinstance(node, ast.Call):
                    callee = tail(node.func)
                    if callee in _ORDERED_CONSUMERS and node.args:
                        what = f"{callee}()"
                        argument = node.args[0]
                        if isinstance(argument, ast.GeneratorExp):
                            iterables = [
                                comp.iter for comp in argument.generators
                            ]
                        else:
                            iterables = [argument]
                for iterable in iterables:
                    if id(iterable) in flagged:
                        continue
                    if _set_like(iterable, set_locals):
                        flagged.add(id(iterable))
                        yield self.finding(
                            module,
                            iterable,
                            f"set iteration feeding ordered output "
                            f"({what}): hash order is not deterministic "
                            f"across runs — iterate sorted(...) instead",
                        )
