"""Reporters: render a :class:`~repro.analysis.engine.LintResult`.

Two renderings from one result: a human one for terminals and a JSON one
(format tag ``ses-lint/1``) for the CI artifact and any tooling that
wants to diff finding sets across commits.  The JSON schema is covered
by a stability test — additive evolution only.
"""

from __future__ import annotations

import json

from repro.analysis.engine import LintResult

__all__ = ["JSON_FORMAT", "render_json", "render_text", "result_payload"]

#: Format tag written into every JSON report.
JSON_FORMAT = "ses-lint/1"


def result_payload(result: LintResult) -> dict[str, object]:
    """The JSON-ready report object (stable schema, sorted findings)."""
    return {
        "format": JSON_FORMAT,
        "files_checked": result.files_checked,
        "rules_run": list(result.rules_run),
        "findings": [finding.as_dict() for finding in result.findings],
        "findings_by_rule": result.findings_by_rule(),
        "suppressed": result.suppressed,
        "clean": result.clean,
    }


def render_json(result: LintResult) -> str:
    return json.dumps(result_payload(result), indent=2, sort_keys=True) + "\n"


def render_text(result: LintResult) -> str:
    lines = [finding.format() for finding in result.findings]
    by_rule = result.findings_by_rule()
    mix = (
        " (" + ", ".join(f"{rule}: {n}" for rule, n in by_rule.items()) + ")"
        if by_rule
        else ""
    )
    suppressed = (
        f", {result.suppressed} suppressed" if result.suppressed else ""
    )
    lines.append(
        f"ses-lint: {len(result.findings)} finding(s){mix} in "
        f"{result.files_checked} file(s){suppressed}"
    )
    return "\n".join(lines) + "\n"
