"""The lint engine: parse sources once, run rules, honor suppressions.

The streaming/solver stack rests on cross-cutting invariants (delta
exhaustiveness, hot-path freeze bans, seeded randomness, registry
completeness) that runtime tests enforce only as long as their coverage
happens to reach every site.  This module turns those invariants into
machine-checked facts over the Python ``ast``:

* :class:`SourceModule` — one parsed file (source, tree, suppression
  comments);
* :class:`Project` — the set of scanned modules plus cross-module
  indices rules need (e.g. the concrete ``LiveDelta`` hierarchy);
* :class:`Rule` — the protocol a check implements (``name``,
  ``rationale``, ``check(module, project)``);
* :func:`run_lint` — collect files, run rules, filter suppressed
  findings, return a :class:`LintResult`.

Suppression is per-line and per-rule: append ``# ses-lint:
disable=<rule>[,<rule>...]`` to the offending line, or put ``# ses-lint:
disable-file=<rule>`` on its own line to silence a rule for the whole
module.  Suppressions are deliberately loud in review diffs — that is
the point.

Exit-code contract (the CLI and CI both rely on it): 0 clean, 1 at
least one non-suppressed finding, 2 internal error (unknown rule,
unreadable path, syntax error in a scanned file).
"""

from __future__ import annotations

import ast
import re
from abc import ABC, abstractmethod
from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from functools import cached_property
from pathlib import Path

__all__ = [
    "Finding",
    "LintError",
    "LintResult",
    "Project",
    "Rule",
    "SourceModule",
    "run_lint",
]

#: Directories never scanned (caches, VCS internals, virtualenvs).
_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".venv", "venv", ".eggs"}

_SUPPRESS_LINE = re.compile(r"#\s*ses-lint:\s*disable=([\w\-,\s]+)")
_SUPPRESS_FILE = re.compile(r"#\s*ses-lint:\s*disable-file=([\w\-,\s]+)")


class LintError(Exception):
    """An internal lint failure (exit code 2), not a finding."""


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"

    def as_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)


class SourceModule:
    """One parsed Python file plus its suppression comments."""

    def __init__(self, path: Path, relpath: str, source: str):
        self.path = path
        self.relpath = relpath
        self.source = source
        try:
            self.tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:  # broken file: internal error, not finding
            raise LintError(f"cannot parse {relpath}: {exc}") from exc

    def matches(self, *suffixes: str) -> bool:
        """Whether this module's path ends with any of ``suffixes``."""
        return any(self.relpath.endswith(suffix) for suffix in suffixes)

    @cached_property
    def _suppressions(self) -> tuple[dict[int, frozenset[str]], frozenset[str]]:
        per_line: dict[int, frozenset[str]] = {}
        whole_file: set[str] = set()
        for number, text in enumerate(self.source.splitlines(), start=1):
            match = _SUPPRESS_FILE.search(text)
            if match:
                whole_file.update(_split_rules(match.group(1)))
                continue
            match = _SUPPRESS_LINE.search(text)
            if match:
                per_line[number] = frozenset(_split_rules(match.group(1)))
        return per_line, frozenset(whole_file)

    def is_suppressed(self, finding: Finding) -> bool:
        per_line, whole_file = self._suppressions
        if finding.rule in whole_file:
            return True
        return finding.rule in per_line.get(finding.line, frozenset())


def _split_rules(blob: str) -> list[str]:
    return [name.strip() for name in blob.split(",") if name.strip()]


class Project:
    """Everything one lint run scanned, plus cross-module lookups."""

    def __init__(self, modules: Sequence[SourceModule]):
        self.modules = tuple(modules)

    def find_modules(self, *suffixes: str) -> list[SourceModule]:
        return [module for module in self.modules if module.matches(*suffixes)]


class Rule(ABC):
    """One invariant check over a parsed module.

    ``name`` is the identifier used by ``--rule`` filtering and
    ``# ses-lint: disable=<name>`` suppressions; ``rationale`` is the
    one-line justification printed by ``lint --list-rules`` and quoted
    in the README rule catalogue.
    """

    name: str = "abstract"
    rationale: str = ""

    @abstractmethod
    def check(self, module: SourceModule, project: Project) -> Iterable[Finding]:
        """Yield findings for ``module`` (``project`` gives global context)."""

    def finding(
        self, module: SourceModule, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            rule=self.name,
            path=module.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


@dataclass(frozen=True)
class LintResult:
    """The outcome of one :func:`run_lint` call."""

    findings: tuple[Finding, ...]
    files_checked: int
    rules_run: tuple[str, ...]
    suppressed: int
    root: str = "."

    @property
    def clean(self) -> bool:
        return not self.findings

    @property
    def exit_code(self) -> int:
        return 0 if self.clean else 1

    def findings_by_rule(self) -> dict[str, int]:
        """``{rule: count}`` over the findings, sorted by rule name."""
        by_rule: dict[str, int] = {}
        for finding in self.findings:
            by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
        return dict(sorted(by_rule.items()))


def collect_files(paths: Sequence[str | Path]) -> list[Path]:
    """Every ``.py`` file under ``paths`` (files pass through), sorted."""
    found: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise LintError(f"no such path: {path}")
        if path.is_file():
            if path.suffix == ".py":
                found.append(path)
            continue
        for candidate in sorted(path.rglob("*.py")):
            if any(part in _SKIP_DIRS for part in candidate.parts):
                continue
            found.append(candidate)
    return sorted(set(found))


def load_project(paths: Sequence[str | Path]) -> Project:
    """Parse every file under ``paths`` into a :class:`Project`."""
    modules = []
    for path in collect_files(paths):
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise LintError(f"cannot read {path}: {exc}") from exc
        modules.append(SourceModule(path, path.as_posix(), source))
    return Project(modules)


def run_lint(
    paths: Sequence[str | Path],
    rules: Sequence[Rule],
) -> LintResult:
    """Run ``rules`` over every Python file under ``paths``.

    Findings on lines carrying a matching ``# ses-lint: disable=`` tag
    (or in files carrying ``disable-file=``) are dropped and counted in
    :attr:`LintResult.suppressed`.
    """
    if not rules:
        raise LintError("no rules selected")
    project = load_project(paths)
    findings: list[Finding] = []
    suppressed = 0
    for module in project.modules:
        for rule in rules:
            for finding in rule.check(module, project):
                if module.is_suppressed(finding):
                    suppressed += 1
                else:
                    findings.append(finding)
    return LintResult(
        findings=tuple(sorted(findings, key=Finding.sort_key)),
        files_checked=len(project.modules),
        rules_run=tuple(rule.name for rule in rules),
        suppressed=suppressed,
    )
