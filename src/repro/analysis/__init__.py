"""repro.analysis: AST-level invariant linting for the solver/stream stack.

The streaming and serving PRs made correctness rest on cross-cutting
rules — every delta consumer dispatches on every :class:`LiveDelta`
subtype, hot-path stream code never freezes a snapshot, all randomness
is seeded, every solver registers — that runtime tests enforce only as
long as their coverage happens to reach each site.  This subsystem turns
them into machine-checked facts, shipped three ways from one
implementation:

* ``ses-repro lint [paths] [--json] [--rule NAME]`` — the CLI gate;
* :func:`run_lint` + :func:`resolve_rules` — the pytest-importable API
  the ``tests/analysis/`` suite (and the whole-repo-clean test) uses;
* the CI ``lint`` job — fails a PR on any non-suppressed finding.

Suppress a deliberate exception per line with ``# ses-lint:
disable=<rule>``; the suppression itself is then visible in review.
"""

from __future__ import annotations

from repro.analysis.engine import (
    Finding,
    LintError,
    LintResult,
    Project,
    Rule,
    SourceModule,
    run_lint,
)
from repro.analysis.report import (
    JSON_FORMAT,
    render_json,
    render_text,
    result_payload,
)
from repro.analysis.rules import (
    ALL_RULES,
    RULE_NAMES,
    default_rules,
    resolve_rules,
)

__all__ = [
    "ALL_RULES",
    "Finding",
    "JSON_FORMAT",
    "LintError",
    "LintResult",
    "Project",
    "RULE_NAMES",
    "Rule",
    "SourceModule",
    "default_rules",
    "render_json",
    "render_text",
    "resolve_rules",
    "result_payload",
    "run_lint",
]
