"""Small AST helpers shared by the lint rules."""

from __future__ import annotations

import ast

__all__ = [
    "base_names",
    "decorator_names",
    "dotted",
    "tail",
]


def dotted(node: ast.AST) -> str | None:
    """The dotted source text of a Name/Attribute chain, else ``None``.

    ``np.random.default_rng`` -> ``"np.random.default_rng"``;
    anything that is not a pure attribute chain (calls, subscripts)
    resolves to ``None``.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def tail(node: ast.AST) -> str | None:
    """The last component of a Name/Attribute chain (``a.b.C`` -> ``"C"``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def decorator_names(classdef: ast.ClassDef | ast.FunctionDef) -> list[str]:
    """Tail names of every decorator, unwrapping calls.

    ``@register_solver(name="grd")`` and ``@registry.register_solver``
    both contribute ``"register_solver"``.
    """
    names = []
    for decorator in classdef.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = tail(target)
        if name is not None:
            names.append(name)
    return names


def base_names(classdef: ast.ClassDef) -> list[str]:
    """Tail names of every base class expression."""
    names = []
    for base in classdef.bases:
        name = tail(base)
        if name is not None:
            names.append(name)
    return names
