"""``python -m repro`` — forwards to the CLI in :mod:`repro.harness.cli`."""

from repro.harness.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
