"""Incremental SES: maintain a schedule as the candidate landscape changes.

Real organizers do not schedule once: new candidate events surface, acts
cancel, and rival venues announce shows after the program is drafted.
This module (extension scope — the paper's related work discusses
incremental *user-assignment*; we provide the event-centric analogue)
keeps a feasible schedule alive under five change operations:

* :meth:`IncrementalScheduler.add_candidate_event` — a new event becomes
  available; it is scheduled immediately if the budget has headroom,
  otherwise it may *displace* a scheduled event it strictly improves on.
* :meth:`IncrementalScheduler.cancel_event` — a scheduled (or candidate)
  event disappears; freed budget is refilled greedily.
* :meth:`IncrementalScheduler.add_competing_event` — a rival show is
  announced; affected intervals are re-optimized by relocation.
* :meth:`IncrementalScheduler.update_event_interest` — audience taste
  drifts: one event's interest column is replaced, and the event gets a
  relocation (or displacement) chance under its new profile.
* :meth:`IncrementalScheduler.raise_budget` — grow ``k`` and fill
  greedily.

All operations preserve feasibility and never lower utility below what a
fresh greedy refill of the same state would achieve *locally*; global
re-optimization is available via :meth:`rebuild`, and an externally
computed schedule (e.g. a batch re-solve) can be transplanted wholesale
via :meth:`adopt`.  Every change operation accepts ``maintain=False`` to
apply only the *structural* change (repair-only mode: cancelled events
vanish, indices stay consistent, nothing is re-optimized) — the mode the
``periodic-rebuild`` streaming policy runs between its batch re-solves.

Hot-path design (the ``repro.stream`` replay loop)
--------------------------------------------------

Greedy maintenance interrogates Eq. 4 constantly; recomputing every
``(interval, event)`` score per decision — as a naive refill does — costs
``O(|T| * |E|)`` engine queries *per change op*.  Instead the scheduler
keeps the GRD assignment list ``L`` alive **across** operations as a
schedule-relative :class:`~repro.core.scoreplane.ScorePlane` (the
``(|T|, |E|)`` score matrix plus dirty-row set this module originally
owned privately, now a first-class core primitive), exploiting the same
structure GRD does: Eq. 1's denominator couples events only *within* an
interval, so a change op invalidates exactly the rows whose scheduled or
competing mass it touched.

* assignment / withdrawal at ``t``   -> row ``t`` dirty;
* rival announced at ``t``           -> row ``t`` dirty;
* candidate arrival                  -> one appended column (O(|T|) queries);
* cancellation                       -> one deleted column (+ home row if
  the victim was scheduled);
* interest drift on ``e``            -> ``e``'s column (and its home row if
  scheduled).

Dirty rows are rescored lazily before the next greedy decision, so a
typical change op costs a couple of row/column refreshes instead of a
full sweep — the measured gap versus re-solving from scratch is what
``benchmarks/bench_stream_policies.py`` reports.  Scheduled events hold
``-inf`` in their column; feasibility is *not* baked into the cache
(unlike batch GRD, feasibility can be restored by later ops), so greedy
pops validate lazily against the live :class:`FeasibilityChecker` and
evict losers only from the pass-local working copy.

The scheduler holds its state in a
:class:`~repro.core.live.LiveInstance` — the mutable counterpart of the
immutable :class:`~repro.core.instance.SESInstance`.  Every structural op
is applied as an O(delta) mutation (one interest column touched, entity
lists patched in place) whose :class:`~repro.core.live.LiveDelta` the
score engine ingests via
:meth:`~repro.core.engine.ScoreEngine.apply_delta`, updating its cached
mass/score state instead of being rebuilt from a fresh instance.  Interest
storage stays backend-preserving (a sparse CSC ``mu`` remains sparse
through arrivals, cancellations and drift), and the engine object itself
survives the whole stream, so the configured
:class:`~repro.core.engine.EngineSpec` trivially survives too.  Batch
consumers (``periodic-rebuild`` re-solves, oracle regret queries,
:attr:`instance`) get an equivalent immutable snapshot from
:meth:`LiveInstance.freeze`, cached until the next mutation and counted
(:attr:`LiveInstance.freezes`) so benchmarks can assert the hot path
never silently falls back to O(instance) rebuilds.

Batch consumers get a warm plane of their own: :meth:`base_plane`
maintains a second, *empty-schedule* :class:`ScorePlane` (with its own
engine) over the same live instance, fed by the exact delta stream the
maintained plane sees.  Periodic batch re-solves and the stream driver's
oracle regret samples run through it — re-scoring only rows dirtied
since the previous re-solve instead of paying the full O(|T| * |E|)
cold fill, and solving directly over the live view (no snapshot freeze).
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Any

import numpy as np

from repro.algorithms.registry import register_solver
from repro.core.engine import EngineSpec, resolve_engine_spec
from repro.core.entities import CandidateEvent, CompetingEvent
from repro.core.errors import (
    InfeasibleAssignmentError,
    LockError,
    UnknownEntityError,
)
from repro.core.feasibility import FeasibilityChecker
from repro.core.instance import SESInstance
from repro.core.live import LiveDelta, LiveInstance
from repro.core.schedule import Assignment, Schedule
from repro.core.scoreplane import ScorePlane
from repro.interactive.locks import LockSet

__all__ = ["IncrementalScheduler"]

#: Strict-improvement margin for displacement / relocation decisions.
_GAIN_EPS = 1e-12


@register_solver(
    name="incremental",
    summary="online maintenance under arrivals, cancellations and new rivals",
    kind="online",
    strict_capable=False,
)
class IncrementalScheduler:
    """Keeps a feasible, greedily-maintained schedule under change events."""

    name = "INC"

    def __init__(
        self,
        instance: SESInstance,
        k: int,
        engine: EngineSpec | str | None = None,
        *,
        engine_kind: str | None = None,
        locks: LockSet | None = None,
    ):
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        self._engine_spec = resolve_engine_spec(
            engine, engine_kind, owner=type(self).__name__
        )
        self._k = k
        self._locks = LockSet.coerce(locks)
        if self._locks is not None:
            self._locks.validate_for(instance)
            if len(self._locks.pins) > k:
                raise LockError(
                    f"{len(self._locks.pins)} events are pinned but the "
                    f"budget allows only k={k} assignments"
                )
        self._live = LiveInstance(instance)
        # engines, schedules and checkers are built over the live view
        # once and observe its mutations for the scheduler's lifetime
        self._engine = self._engine_spec.build(self._live)
        self._checker = FeasibilityChecker(self._live)
        # the persistent GRD assignment list: a schedule-relative
        # ScorePlane (Eq. 4 score per (t, e) cell, -inf for scheduled
        # events, unfilled until the first greedy decision)
        self._plane = ScorePlane(self._engine, auto_reset=False)
        # lazily-created empty-schedule plane for batch consumers
        self._base_plane: ScorePlane | None = None
        if self._locks is not None:
            self._commit_pins()
        self._fill()

    # ------------------------------------------------------------------
    @property
    def live(self) -> LiveInstance:
        """The mutable live state every change op is applied to."""
        return self._live

    @property
    def instance(self) -> SESInstance:
        """An immutable snapshot of the current state (cached freeze).

        Costs O(instance) after a mutation; streaming hot paths should
        read through :attr:`live` instead.
        """
        return self._live.freeze()  # ses-lint: disable=freeze-ban

    @property
    def schedule(self) -> Schedule:
        return self._engine.schedule

    @property
    def k(self) -> int:
        return self._k

    @property
    def engine_spec(self) -> EngineSpec:
        """The spec every (re)built engine is constructed from."""
        return self._engine_spec

    @property
    def plane(self) -> ScorePlane:
        """The schedule-relative score plane maintained across ops."""
        return self._plane

    @property
    def locks(self) -> LockSet | None:
        """The organizer locks currently in force (renumbered on cancels).

        ``None`` when no lock binds anything; pins stay committed across
        every maintenance pass and no repair ever lands on a forbidden
        cell.
        """
        return self._locks

    def base_plane(self) -> ScorePlane:
        """A warm empty-schedule :class:`ScorePlane` over the live state.

        Built (with its own engine) on first request and kept current by
        the same delta stream the maintained plane ingests, so batch
        consumers — the ``periodic-rebuild`` policy's re-solves, the
        stream driver's oracle regret samples — can
        ``solver.solve(scheduler.live, scheduler.k, plane=...)`` and pay
        only for rows dirtied since the previous solve, with no instance
        freeze at all.
        """
        if self._base_plane is None:
            self._base_plane = ScorePlane(
                self._engine_spec.build(self._live)
            )
        return self._base_plane

    @property
    def materialized_base_plane(self) -> ScorePlane | None:
        """The base plane if some batch consumer has requested one.

        Observability accessor (stream results report its stats); unlike
        :meth:`base_plane` it never builds an engine as a side effect.
        """
        return self._base_plane

    def utility(self) -> float:
        return self._engine.total_utility()

    # ------------------------------------------------------------------
    # change operations
    # ------------------------------------------------------------------
    def add_candidate_event(
        self,
        location: int,
        required_resources: float,
        interest_column: np.ndarray,
        name: str = "",
        tags: frozenset[str] = frozenset(),
        *,
        maintain: bool = True,
    ) -> int:
        """Register a new candidate event; returns its index.

        If the schedule is below budget the event competes for a free
        slot greedily; at budget, it replaces the weakest scheduled event
        whenever swapping strictly improves total utility.  With
        ``maintain=False`` the event is only registered.
        """
        event = CandidateEvent(
            index=self._live.n_events,
            location=location,
            required_resources=required_resources,
            name=name or f"arrival-{self._live.n_events}",
            tags=tags,
        )
        delta = self._live.add_event(event, interest_column)
        self._ingest(delta)
        if maintain:
            if len(self.schedule) < self._k:
                self._fill()
            else:
                self._try_displacement(event.index)
        return event.index

    def cancel_event(self, event: int, *, maintain: bool = True) -> None:
        """Remove a candidate event entirely (scheduled or not)."""
        if not 0 <= event < self._live.n_events:
            raise UnknownEntityError(f"no candidate event {event}")
        home = self.schedule.interval_of(event)
        if home is not None:
            # withdraw while the victim's interest column is still live,
            # so the engine's mass update sees the right values
            self._engine.unassign(event)
            self._checker.unapply(Assignment(event, home))
        delta = self._live.remove_event(event)
        # the planes delete the column and the engines renumber their
        # schedule mirrors, exactly like the deletion
        self._ingest(delta)
        if self._locks is not None:
            # locks follow the renumbering: constraints on the removed
            # event vanish, higher-indexed events shift down by one
            self._locks = LockSet.coerce(
                self._locks.shifted_for_removal(event)
            )
        # the checker tracks events by index: replay the renumbered
        # schedule (O(k), with k the schedule size — not O(instance))
        self._checker = FeasibilityChecker(self._live, self.schedule)
        if home is not None:
            self._plane.mark_dirty(home)
        if maintain:
            self._fill()

    def add_competing_event(
        self,
        interval: int,
        interest_column: np.ndarray,
        name: str = "",
        *,
        maintain: bool = True,
    ) -> int:
        """Announce a new third-party event at ``interval``; re-optimize it.

        Scheduled events at the affected interval are given a relocation
        pass: each is moved to whichever interval now yields the highest
        gain (often away from the newly contested slot).
        """
        rival = CompetingEvent(
            index=self._live.n_competing,
            interval=interval,
            name=name or f"rival-arrival-{self._live.n_competing}",
        )
        delta = self._live.add_competing(rival, interest_column)
        self._ingest(delta)
        if maintain:
            self._relocate_interval(interval)
        return rival.index

    def update_event_interest(
        self,
        event: int,
        interest_column: np.ndarray,
        *,
        maintain: bool = True,
    ) -> None:
        """Replace ``event``'s interest column (audience taste drift).

        Feasibility is untouched (interest plays no part in it); with
        ``maintain=True`` the drifted event gets a relocation pass if it
        is scheduled, and a chance to enter the schedule (fill or
        displacement) if it is not.
        """
        if not 0 <= event < self._live.n_events:
            raise UnknownEntityError(f"no candidate event {event}")
        home = self.schedule.interval_of(event)
        delta = self._live.replace_event_interest(event, interest_column)
        # the plane dirties the home row when the event is scheduled and
        # restores the event's column when it is not
        self._ingest(delta)
        if not maintain:
            return
        if home is not None:
            self._plane.ensure()
            self._relocate_event(event, home)
            self._plane.flush()
        elif len(self.schedule) < self._k:
            self._fill()
        else:
            self._try_displacement(event)

    def raise_budget(self, new_k: int, *, maintain: bool = True) -> None:
        """Increase the budget and fill the new headroom greedily."""
        if new_k < self._k:
            raise ValueError(
                f"budget can only grow (use cancel_event to shrink); "
                f"{new_k} < {self._k}"
            )
        self._k = new_k
        if maintain:
            self._fill()

    def rebuild(self) -> None:
        """Drop the current schedule and re-run greedy from scratch.

        The maintained schedule is greedy *conditioned on history*; after
        many changes a fresh GRD run can find better global structure.
        When a :meth:`base_plane` has been materialized, the refill
        warm-starts from its cached empty-schedule matrix (a reset engine
        *is* at the empty baseline) instead of re-scoring every cell —
        bit-identical to the cold refill, since both planes are kept
        current by the same delta stream.
        """
        self._engine.reset()
        self._checker = FeasibilityChecker(self._live)
        if self._base_plane is not None:
            self._plane.seed_from(self._base_plane)
        else:
            self._plane.invalidate()
        if self._locks is not None:
            self._commit_pins()
        self._fill()

    def adopt(self, schedule: Schedule | Mapping[int, int]) -> None:
        """Replace the maintained schedule with an external one wholesale.

        ``schedule`` is a :class:`Schedule` (built against an instance of
        identical shape) or an ``{event: interval}`` mapping — typically
        the outcome of a batch re-solve on :attr:`instance`.  The schedule
        is validated assignment by assignment; no refill is performed.
        """
        mapping = (
            schedule.as_mapping()
            if isinstance(schedule, Schedule)
            else dict(schedule)
        )
        # validate the whole mapping before touching live state, so a
        # rejected adoption leaves the current schedule intact (atomic)
        if self._locks is not None:
            self._locks.check_schedule(mapping)
        rehearsal = FeasibilityChecker(self._live)
        for event, interval in sorted(mapping.items()):
            rehearsal.apply(Assignment(event, interval))
        self._engine.reset()
        self._checker = FeasibilityChecker(self._live)
        for event, interval in sorted(mapping.items()):
            self._checker.apply(Assignment(event, interval))
            self._engine.assign(event, interval)
        self._plane.invalidate()

    def export_float_state(self) -> dict[str, Any]:
        """Bitwise snapshot of accumulated float state (for checkpoints).

        :meth:`adopt` rebuilds engine mass and capacity sums by replaying
        assignments in sorted order, which lands within an ulp of — but
        not bit-identical to — state accumulated along the live mutation
        history.  Restoring this snapshot on top of an adopted schedule
        makes the scheduler bit-identical to the one it was exported
        from in every semantic observable.
        """
        return {
            "engine": self._engine.export_mass_state(),
            "checker": self._checker.export_state(),
        }

    def restore_float_state(self, state: dict[str, Any]) -> None:
        """Adopt a :meth:`export_float_state` snapshot (after :meth:`adopt`)."""
        engine_state = state.get("engine")
        if engine_state is not None:
            self._engine.restore_mass_state(engine_state)
        self._checker.restore_state(state["checker"])
        # score-plane caches are pure functions of engine state; drop
        # them so the next ensure() recomputes from the restored bits
        self._plane.invalidate()

    # ------------------------------------------------------------------
    # score-plane bookkeeping
    # ------------------------------------------------------------------
    def _ingest(self, delta: LiveDelta) -> None:
        """Feed one structural delta to the maintained (and base) planes.

        Each plane forwards to its own engine and patches exactly the
        cells the mutation touched — see :meth:`ScorePlane.apply_delta`.
        """
        self._plane.apply_delta(delta)
        if self._base_plane is not None:
            self._base_plane.apply_delta(delta)

    def _commit(self, event: int, interval: int) -> None:
        self._checker.apply(Assignment(event, interval))
        self._engine.assign(event, interval)
        self._plane.on_assign(event, interval)

    def _uncommit(self, event: int, interval: int) -> None:
        self._engine.unassign(event)
        self._checker.unapply(Assignment(event, interval))
        self._plane.on_unassign(event, interval)

    def _commit_pins(self) -> None:
        """Commit every pinned assignment into the fresh schedule."""
        assert self._locks is not None
        for assignment in self._locks.pinned_assignments():
            try:
                self._commit(assignment.event, assignment.interval)
            except InfeasibleAssignmentError as exc:
                raise LockError(
                    f"pinned assignment {assignment} cannot be honored: {exc}"
                ) from exc

    def _pinned_events(self) -> frozenset[int]:
        return (
            self._locks.pinned_events if self._locks is not None else frozenset()
        )

    # ------------------------------------------------------------------
    # greedy maintenance passes
    # ------------------------------------------------------------------
    def _fill(self) -> None:
        """Greedy refill up to budget (the GRD inner loop on live state).

        Pops the best cell of the persistent score matrix, validating
        lazily: infeasible pops are evicted from a pass-local working
        copy only, because a later change op can make them feasible
        again.  Selection order matches GRD's flat argmax exactly.
        """
        if len(self.schedule) >= self._k or self._live.n_events == 0:
            return
        scores = self._plane.ensure()
        work = scores.copy()
        n_events = self._live.n_events
        # forbidden cells leave the working copy before the first pop;
        # restored rows re-mask below, so a refill can never pick one
        forbid_rows: dict[int, list[int]] = {}
        if self._locks is not None:
            for forbidden_interval, forbidden_event in self._locks.forbids:
                forbid_rows.setdefault(forbidden_interval, []).append(
                    forbidden_event
                )
            for forbidden_interval, events in forbid_rows.items():
                work[forbidden_interval, events] = -np.inf
        while len(self.schedule) < self._k:
            flat = int(np.argmax(work))
            interval, event = divmod(flat, n_events)
            if not np.isfinite(work[interval, event]):
                break  # no assignable cell remains
            assignment = Assignment(event, interval)
            if not self._checker.is_valid(assignment):
                work[interval, event] = -np.inf
                continue
            self._commit(event, interval)
            if len(self.schedule) >= self._k:
                break
            self._plane.flush()
            work[:, event] = -np.inf
            work[interval] = scores[interval]
            if interval in forbid_rows:
                work[interval, forbid_rows[interval]] = -np.inf
        # rows dirtied by the final commit stay dirty: they are rescored
        # lazily by the next plane.ensure() that actually reads them,
        # which merges consecutive refreshes of the same interval across
        # ops (identical values — a refresh is a pure function of the
        # engine state at read time, and any op that perturbs an interval
        # re-dirties it)

    def _try_displacement(self, arrival: int) -> None:
        """Swap the arrival in for a scheduled event if strictly better.

        Removing a victim changes mass only at its home interval, so the
        arrival's cached scores stay exact for every other target; the
        one contested cell is rescored live.  The what-if evaluation is
        pure: the feasibility checker briefly rehearses the removal (two
        O(1) toggles per victim), while the engine answers
        :meth:`~repro.core.engine.ScoreEngine.removal_loss` and
        :meth:`~repro.core.engine.ScoreEngine.score_excluding` without
        any mass-state churn.
        """
        arrival_scores = self._plane.ensure()[:, arrival].copy()
        pinned = self._pinned_events()
        victims = [
            (victim, home)
            for victim, home in self.schedule.as_mapping().items()
            if victim not in pinned  # pins are never displacement victims
        ]
        losses = self._engine.removal_losses([victim for victim, _ in victims])
        by_home: dict[int, list[int]] = {}
        for victim, home in victims:
            by_home.setdefault(home, []).append(victim)
        contested = {
            victim: score
            for home, home_victims in by_home.items()
            for victim, score in zip(
                home_victims,
                self._engine.scores_excluding_each(
                    arrival, home, home_victims
                ),
            )
        }
        best_gain, best_move = 0.0, None
        for (victim, home), loss in zip(victims, losses):
            removed = Assignment(victim, home)
            self._checker.unapply(removed)
            for target in range(self._live.n_intervals):
                if self._locks is not None and self._locks.is_forbidden(
                    target, arrival
                ):
                    continue
                candidate = Assignment(arrival, target)
                if not self._checker.is_valid(candidate):
                    continue
                score = (
                    contested[victim]
                    if target == home
                    else arrival_scores[target]
                )
                gain = score - loss
                if gain > best_gain + _GAIN_EPS:
                    best_gain, best_move = gain, (victim, home, target)
            self._checker.apply(removed)
        if best_move is not None:
            victim, home, target = best_move
            self._uncommit(victim, home)
            self._commit(arrival, target)
            self._plane.flush()

    def _relocate_interval(self, interval: int) -> None:
        """Give each event at ``interval`` a chance to flee new competition."""
        occupants = list(self.schedule.events_at(interval))
        if not occupants:
            return
        self._plane.ensure()
        for event in occupants:
            self._relocate_event(event, interval)
        self._plane.flush()

    def _relocate_event(self, event: int, home: int) -> None:
        """Move one scheduled event to its best interval (staying allowed)."""
        if event in self._pinned_events():
            return  # pinned in place: relocation never touches it
        self._uncommit(event, home)
        self._plane.flush()
        column = self._plane.array[:, event]
        best_interval, best_gain = home, column[home]
        for target in range(self._live.n_intervals):
            if target == home:
                continue
            if self._locks is not None and self._locks.is_forbidden(
                target, event
            ):
                continue
            if not self._checker.is_valid(Assignment(event, target)):
                continue
            if column[target] > best_gain + _GAIN_EPS:
                best_gain, best_interval = column[target], target
        self._commit(event, best_interval)
