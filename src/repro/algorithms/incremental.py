"""Incremental SES: maintain a schedule as the candidate landscape changes.

Real organizers do not schedule once: new candidate events surface, acts
cancel, and rival venues announce shows after the program is drafted.
This module (extension scope — the paper's related work discusses
incremental *user-assignment*; we provide the event-centric analogue)
keeps a feasible schedule alive under four change operations:

* :meth:`IncrementalScheduler.add_candidate_event` — a new event becomes
  available; it is scheduled immediately if the budget has headroom,
  otherwise it may *displace* a scheduled event it strictly improves on.
* :meth:`IncrementalScheduler.cancel_event` — a scheduled (or candidate)
  event disappears; freed budget is refilled greedily.
* :meth:`IncrementalScheduler.add_competing_event` — a rival show is
  announced; affected intervals are re-optimized by relocation.
* :meth:`IncrementalScheduler.raise_budget` — grow ``k`` and fill
  greedily.

All operations preserve feasibility and never lower utility below what a
fresh greedy refill of the same state would achieve *locally*; global
re-optimization is available via :meth:`rebuild`.

Because the instance is immutable, the incremental scheduler works on a
*mutable copy* of the instance data: it rebuilds a new
:class:`~repro.core.instance.SESInstance` when entities change and
transplants the schedule.  This costs O(instance) per structural change —
cheap next to rescoring — and keeps every downstream component oblivious
to mutation.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.registry import register_solver
from repro.core.activity import ActivityModel
from repro.core.engine import EngineSpec, resolve_engine_spec
from repro.core.entities import CandidateEvent, CompetingEvent
from repro.core.errors import UnknownEntityError
from repro.core.feasibility import FeasibilityChecker
from repro.core.instance import SESInstance
from repro.core.interest import InterestMatrix
from repro.core.schedule import Assignment, Schedule

__all__ = ["IncrementalScheduler"]


@register_solver(
    name="incremental",
    summary="online maintenance under arrivals, cancellations and new rivals",
    kind="online",
    strict_capable=False,
)
class IncrementalScheduler:
    """Keeps a feasible, greedily-maintained schedule under change events."""

    name = "INC"

    def __init__(
        self,
        instance: SESInstance,
        k: int,
        engine: EngineSpec | str | None = None,
        *,
        engine_kind: str | None = None,
    ):
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        self._engine_spec = resolve_engine_spec(
            engine, engine_kind, owner=type(self).__name__
        )
        self._k = k
        self._instance = instance
        self._engine = self._engine_spec.build(instance)
        self._checker = FeasibilityChecker(instance)
        self._fill()

    # ------------------------------------------------------------------
    @property
    def instance(self) -> SESInstance:
        """The current (possibly rebuilt) instance."""
        return self._instance

    @property
    def schedule(self) -> Schedule:
        return self._engine.schedule

    @property
    def k(self) -> int:
        return self._k

    def utility(self) -> float:
        return self._engine.total_utility()

    # ------------------------------------------------------------------
    # change operations
    # ------------------------------------------------------------------
    def add_candidate_event(
        self,
        location: int,
        required_resources: float,
        interest_column: np.ndarray,
        name: str = "",
        tags: frozenset[str] = frozenset(),
    ) -> int:
        """Register a new candidate event; returns its index.

        If the schedule is below budget the event competes for a free
        slot greedily; at budget, it replaces the weakest scheduled event
        whenever swapping strictly improves total utility.
        """
        interest_column = np.asarray(interest_column, dtype=float)
        if interest_column.shape != (self._instance.n_users,):
            raise ValueError(
                f"interest_column must have shape ({self._instance.n_users},), "
                f"got {interest_column.shape}"
            )
        event = CandidateEvent(
            index=self._instance.n_events,
            location=location,
            required_resources=required_resources,
            name=name or f"arrival-{self._instance.n_events}",
            tags=tags,
        )
        candidate = np.column_stack(
            [self._instance.interest.candidate, interest_column]
        )
        self._rebuild_instance(
            events=[*self._instance.events, event],
            interest=InterestMatrix.from_arrays(
                candidate, self._instance.interest.competing
            ),
        )
        if len(self.schedule) < self._k:
            self._fill()
        else:
            self._try_displacement(event.index)
        return event.index

    def cancel_event(self, event: int) -> None:
        """Remove a candidate event entirely (scheduled or not)."""
        if not 0 <= event < self._instance.n_events:
            raise UnknownEntityError(f"no candidate event {event}")
        keep = [e for e in range(self._instance.n_events) if e != event]
        mapping = {old: new for new, old in enumerate(keep)}

        survivors = {
            mapping[e]: t
            for e, t in self.schedule.as_mapping().items()
            if e != event
        }
        events = [
            CandidateEvent(
                index=mapping[old.index],
                location=old.location,
                required_resources=old.required_resources,
                name=old.name,
                tags=old.tags,
            )
            for old in self._instance.events
            if old.index != event
        ]
        self._rebuild_instance(
            events=events,
            interest=InterestMatrix.from_arrays(
                self._instance.interest.candidate[:, keep],
                self._instance.interest.competing,
            ),
            keep_schedule=survivors,
        )
        self._fill()

    def add_competing_event(
        self,
        interval: int,
        interest_column: np.ndarray,
        name: str = "",
    ) -> int:
        """Announce a new third-party event at ``interval``; re-optimize it.

        Scheduled events at the affected interval are given a relocation
        pass: each is moved to whichever interval now yields the highest
        gain (often away from the newly contested slot).
        """
        interest_column = np.asarray(interest_column, dtype=float)
        if interest_column.shape != (self._instance.n_users,):
            raise ValueError(
                f"interest_column must have shape ({self._instance.n_users},), "
                f"got {interest_column.shape}"
            )
        rival = CompetingEvent(
            index=self._instance.n_competing,
            interval=interval,
            name=name or f"rival-arrival-{self._instance.n_competing}",
        )
        competing = np.column_stack(
            [self._instance.interest.competing, interest_column]
        )
        self._rebuild_instance(
            competing_events=[*self._instance.competing, rival],
            interest=InterestMatrix.from_arrays(
                self._instance.interest.candidate, competing
            ),
        )
        self._relocate_interval(interval)
        return rival.index

    def raise_budget(self, new_k: int) -> None:
        """Increase the budget and fill the new headroom greedily."""
        if new_k < self._k:
            raise ValueError(
                f"budget can only grow (use cancel_event to shrink); "
                f"{new_k} < {self._k}"
            )
        self._k = new_k
        self._fill()

    def rebuild(self) -> None:
        """Drop the current schedule and re-run greedy from scratch.

        The maintained schedule is greedy *conditioned on history*; after
        many changes a fresh GRD run can find better global structure.
        """
        self._engine.reset()
        self._checker = FeasibilityChecker(self._instance)
        self._fill()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _fill(self) -> None:
        """Greedy refill up to budget (the GRD inner loop on live state)."""
        while len(self.schedule) < self._k:
            best_score, best_assignment = -1.0, None
            for interval in range(self._instance.n_intervals):
                events = [
                    e
                    for e in range(self._instance.n_events)
                    if not self.schedule.contains_event(e)
                    and self._checker.is_valid(Assignment(e, interval))
                ]
                if not events:
                    continue
                scores = self._engine.scores_for_interval(interval, events)
                top = int(np.argmax(scores))
                if scores[top] > best_score:
                    best_score = float(scores[top])
                    best_assignment = Assignment(events[top], interval)
            if best_assignment is None:
                break
            self._checker.apply(best_assignment)
            self._engine.assign(best_assignment.event, best_assignment.interval)

    def _try_displacement(self, arrival: int) -> None:
        """Swap the arrival in for a scheduled event if strictly better."""
        best_gain, best_move = 0.0, None
        for victim, interval in self.schedule.as_mapping().items():
            removed = Assignment(victim, interval)
            self._engine.unassign(victim)
            self._checker.unapply(removed)
            loss = self._engine.score(victim, interval)
            for target in range(self._instance.n_intervals):
                candidate = Assignment(arrival, target)
                if not self._checker.is_valid(candidate):
                    continue
                gain = self._engine.score(arrival, target) - loss
                if gain > best_gain + 1e-12:
                    best_gain, best_move = gain, (victim, interval, target)
            self._checker.apply(removed)
            self._engine.assign(victim, interval)
        if best_move is not None:
            victim, interval, target = best_move
            self._engine.unassign(victim)
            self._checker.unapply(Assignment(victim, interval))
            self._checker.apply(Assignment(arrival, target))
            self._engine.assign(arrival, target)

    def _relocate_interval(self, interval: int) -> None:
        """Give each event at ``interval`` a chance to flee new competition."""
        for event in list(self.schedule.events_at(interval)):
            current = Assignment(event, interval)
            self._engine.unassign(event)
            self._checker.unapply(current)
            best_interval = interval
            best_gain = self._engine.score(event, interval)
            for target in range(self._instance.n_intervals):
                if target == interval:
                    continue
                candidate = Assignment(event, target)
                if not self._checker.is_valid(candidate):
                    continue
                gain = self._engine.score(event, target)
                if gain > best_gain + 1e-12:
                    best_gain, best_interval = gain, target
            chosen = Assignment(event, best_interval)
            self._checker.apply(chosen)
            self._engine.assign(event, best_interval)

    def _rebuild_instance(
        self,
        events=None,
        competing_events=None,
        interest: InterestMatrix | None = None,
        keep_schedule: dict[int, int] | None = None,
    ) -> None:
        """Construct the updated immutable instance and transplant state."""
        old = self._instance
        new_instance = SESInstance(
            users=old.users,
            intervals=old.intervals,
            events=tuple(events) if events is not None else old.events,
            competing=(
                tuple(competing_events)
                if competing_events is not None
                else old.competing
            ),
            interest=interest if interest is not None else old.interest,
            activity=ActivityModel(old.activity.matrix),
            organizer=old.organizer,
        )
        mapping = (
            keep_schedule
            if keep_schedule is not None
            else self.schedule.as_mapping()
        )
        self._instance = new_instance
        self._engine = self._engine_spec.build(new_instance)
        self._checker = FeasibilityChecker(new_instance)
        for event, interval in sorted(mapping.items()):
            self._checker.apply(Assignment(event, interval))
            self._engine.assign(event, interval)
