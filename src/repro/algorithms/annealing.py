"""Simulated annealing for SES (extension scope).

A metaheuristic alternative to GRD used in the Abl-5 ablation: start from
any feasible ``k``-schedule (by default RAND's), then repeatedly propose a
random relocate/replace move and accept with the Metropolis rule under a
geometrically cooled temperature.  The best schedule seen is returned, so
the result never degrades below its seed.

Annealing here is *not* a claim from the paper; it demonstrates that the
library's engine/feasibility substrate supports arbitrary search schemes,
and provides a second quality yardstick next to GRD.
"""

from __future__ import annotations

import math

import numpy as np

from repro.algorithms.base import ScheduleResult, Scheduler, SolverStats
from repro.algorithms.random_schedule import RandomScheduler
from repro.algorithms.registry import register_solver
from repro.core.engine import EngineSpec, ScoreEngine
from repro.core.feasibility import FeasibilityChecker
from repro.core.instance import SESInstance
from repro.core.schedule import Assignment, Schedule
from repro.interactive.locks import LockSet
from repro.utils.rng import ensure_rng

__all__ = ["AnnealingScheduler"]


@register_solver(
    summary="simulated annealing over relocate/replace moves",
    seeded=True,
    anytime=True,
    default_params={"steps": 2000},
)
class AnnealingScheduler(Scheduler):
    """Metropolis search over relocate/replace moves with geometric cooling."""

    name = "SA"

    def __init__(
        self,
        engine: EngineSpec | str | None = None,
        strict: bool = False,
        seed: int | np.random.Generator | None = None,
        steps: int = 2000,
        initial_temperature: float = 1.0,
        cooling: float = 0.995,
        seed_schedule: Schedule | None = None,
        *,
        engine_kind: str | None = None,
    ):
        super().__init__(engine, strict=strict, engine_kind=engine_kind)
        if steps <= 0:
            raise ValueError(f"steps must be positive, got {steps}")
        if not 0.0 < cooling < 1.0:
            raise ValueError(f"cooling must lie in (0, 1), got {cooling}")
        if initial_temperature <= 0:
            raise ValueError(
                f"initial_temperature must be positive, got {initial_temperature}"
            )
        self._rng = ensure_rng(seed)
        self._steps = steps
        self._initial_temperature = initial_temperature
        self._cooling = cooling
        self._seed_schedule = seed_schedule

    # ------------------------------------------------------------------
    def _solve(
        self,
        instance: SESInstance,
        k: int,
        engine: ScoreEngine,
        checker: FeasibilityChecker,
        stats: SolverStats,
        *,
        plane=None,  # SA scores only relative moves; the base matrix is moot
        locks: LockSet | None = None,
    ) -> None:
        seed_schedule = self._seed_schedule
        if seed_schedule is None:
            seeder = RandomScheduler(self._engine_spec, seed=self._rng)
            seed_schedule = seeder.solve(instance, k, locks=locks).schedule
        elif locks is not None:
            # a caller-supplied seed must already honor the locks —
            # the walk preserves them but cannot repair a bad seed
            locks.check_schedule(seed_schedule)
        for assignment in seed_schedule:
            checker.apply(assignment)
            engine.assign(assignment.event, assignment.interval)

        current_utility = engine.total_utility()
        best_mapping = engine.schedule.as_mapping()
        best_utility = current_utility
        temperature = self._initial_temperature

        for _ in range(self._steps):
            delta = self._propose_and_maybe_apply(
                instance, engine, checker, temperature, stats, locks
            )
            current_utility += delta
            if current_utility > best_utility + 1e-12:
                best_utility = current_utility
                best_mapping = engine.schedule.as_mapping()
            temperature *= self._cooling

        # rewind to the best schedule observed
        engine.reset()
        rebuild = FeasibilityChecker(instance)
        for event, interval in sorted(best_mapping.items()):
            rebuild.apply(Assignment(event=event, interval=interval))
            engine.assign(event, interval)

    # ------------------------------------------------------------------
    def _propose_and_maybe_apply(
        self,
        instance: SESInstance,
        engine: ScoreEngine,
        checker: FeasibilityChecker,
        temperature: float,
        stats: SolverStats,
        locks: LockSet | None = None,
    ) -> float:
        """One Metropolis step; returns the applied utility delta (0 if rejected)."""
        scheduled = list(engine.schedule.scheduled_events())
        if locks is not None:
            # pinned events never move (filtered after the list build so
            # the unlocked path is byte-identical when locks is None)
            pinned = locks.pinned_events
            scheduled = [e for e in scheduled if e not in pinned]
        if not scheduled:
            return 0.0
        event = int(self._rng.choice(scheduled))
        source = engine.schedule.interval_of(event)
        old_assignment = Assignment(event=event, interval=source)

        engine.unassign(event)
        checker.unapply(old_assignment)
        removal_loss = engine.score(event, source)

        if self._rng.random() < 0.5:
            # relocate: same event, random interval
            new_event = event
            new_interval = int(self._rng.integers(instance.n_intervals))
        else:
            # replace: random event (possibly unscheduled), same interval
            new_event = int(self._rng.integers(instance.n_events))
            new_interval = source

        proposal = Assignment(event=new_event, interval=new_interval)
        stats.moves_evaluated += 1
        if (
            locks is not None and locks.is_forbidden(new_interval, new_event)
        ) or not checker.is_valid(proposal):
            # revert (forbidden cells are rejected exactly like invalid ones;
            # a pinned new_event is already scheduled, so validity rejects it)
            checker.apply(old_assignment)
            engine.assign(event, source)
            return 0.0

        gain = engine.score(new_event, new_interval)
        delta = gain - removal_loss
        if delta >= 0 or self._rng.random() < math.exp(delta / temperature):
            checker.apply(proposal)
            engine.assign(new_event, new_interval)
            stats.moves_accepted += 1
            return delta
        checker.apply(old_assignment)
        engine.assign(event, source)
        return 0.0
