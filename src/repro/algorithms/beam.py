"""Beam-search SES scheduler — a width-w generalization of GRD (extension).

GRD commits to the single best assignment each round; when two assignments
have near-equal scores, the one it discards may have enabled a better
future (e.g. keeping a scarce location free).  Beam search keeps the ``w``
best *partial schedules* per depth instead:

* depth ``d`` holds up to ``w`` feasible schedules with ``d`` assignments;
* each is expanded with its top ``branch`` marginal assignments;
* children are deduplicated (the same assignment set reached in different
  orders is one schedule) and pruned back to the best ``w`` by utility.

``beam_width=1`` reproduces GRD exactly (property-tested); larger widths
trade time for a monotonically *non-decreasing* best-found utility at
depth k — the Abl-6 benchmark quantifies that trade.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import Scheduler, SolverStats
from repro.algorithms.registry import register_solver
from repro.core.engine import EngineSpec, ScoreEngine
from repro.core.feasibility import FeasibilityChecker
from repro.core.instance import SESInstance
from repro.core.schedule import Assignment
from repro.core.scoreplane import ScorePlane
from repro.interactive.locks import LockSet

__all__ = ["BeamSearchScheduler"]


@register_solver(
    summary="width-w beam search generalizing GRD",
    anytime=True,
    default_params={"beam_width": 4},
)
class BeamSearchScheduler(Scheduler):
    """Keep the ``beam_width`` best partial schedules per depth."""

    name = "BEAM"

    def __init__(
        self,
        engine: EngineSpec | str | None = None,
        strict: bool = False,
        beam_width: int = 4,
        branch_factor: int | None = None,
        *,
        engine_kind: str | None = None,
    ):
        super().__init__(engine, strict=strict, engine_kind=engine_kind)
        if beam_width <= 0:
            raise ValueError(f"beam_width must be positive, got {beam_width}")
        if branch_factor is not None and branch_factor <= 0:
            raise ValueError(
                f"branch_factor must be positive, got {branch_factor}"
            )
        self._beam_width = beam_width
        # how many children each beam node spawns; default: beam width + 1
        # so ties cannot starve the frontier
        self._branch_factor = branch_factor or beam_width + 1

    # ------------------------------------------------------------------
    def _solve(
        self,
        instance: SESInstance,
        k: int,
        engine: ScoreEngine,
        checker: FeasibilityChecker,
        stats: SolverStats,
        *,
        plane: "ScorePlane | None" = None,
        locks: LockSet | None = None,
    ) -> None:
        # The root expansion scores every (event, interval) pair against
        # the empty schedule — exactly the base matrix, read warm from
        # the plane when one is injected.  One work engine serves every
        # deeper expansion (reset + replayed per node).
        base = self._base_scores(instance, engine, stats, plane, locks)
        work_engine = self._engine_spec.build(instance)
        forbidden = locks.forbids if locks is not None else frozenset()

        # Pins seed the frontier: every beam node descends from the pinned
        # partial schedule, so the winner contains the pins by construction.
        root_mapping: dict[int, int] = {}
        root_utility = 0.0
        if locks is not None and locks.pins:
            seed_checker = FeasibilityChecker(instance)
            self._apply_pins(locks, work_engine, seed_checker, stats)
            root_mapping = work_engine.schedule.as_mapping()
            root_utility = work_engine.total_utility()

        # frontier entries: (utility, {event: interval})
        frontier: list[tuple[float, dict[int, int]]] = [
            (root_utility, dict(root_mapping))
        ]
        best_complete: tuple[float, dict[int, int]] = (
            root_utility,
            dict(root_mapping),
        )

        for __ in range(k - len(root_mapping)):
            children: dict[frozenset, tuple[float, dict[int, int]]] = {}
            for utility, mapping in frontier:
                expansions = self._expand(
                    instance, mapping, utility, stats, base, work_engine,
                    forbidden=forbidden,
                )
                for child_utility, child_mapping in expansions:
                    key = frozenset(child_mapping.items())
                    known = children.get(key)
                    if known is None or child_utility > known[0]:
                        children[key] = (child_utility, child_mapping)
            if not children:
                break  # nothing can be extended further
            ranked = sorted(
                children.values(), key=lambda entry: -entry[0]
            )[: self._beam_width]
            frontier = ranked
            if ranked[0][0] > best_complete[0] or len(
                ranked[0][1]
            ) > len(best_complete[1]):
                best_complete = ranked[0]

        # materialize the winner into the harness-provided engine/checker
        for event, interval in sorted(best_complete[1].items()):
            checker.apply(Assignment(event, interval))
            engine.assign(event, interval)
        stats.iterations = len(best_complete[1])

    # ------------------------------------------------------------------
    def _expand(
        self,
        instance: SESInstance,
        mapping: dict[int, int],
        utility: float,
        stats: SolverStats,
        base: np.ndarray,
        engine: ScoreEngine,
        *,
        forbidden: frozenset[tuple[int, int]] = frozenset(),
    ) -> list[tuple[float, dict[int, int]]]:
        """Top ``branch_factor`` one-assignment extensions of ``mapping``."""
        engine.reset()
        checker = FeasibilityChecker(instance)
        for event, interval in mapping.items():
            checker.apply(Assignment(event, interval))
            engine.assign(event, interval)

        candidates: list[tuple[float, int, int]] = []
        for interval in range(instance.n_intervals):
            events = [
                e
                for e in range(instance.n_events)
                if e not in mapping
                and (interval, e) not in forbidden
                and checker.is_valid(Assignment(e, interval))
            ]
            if not events:
                continue
            if not mapping:
                scores = base[interval, events]  # the root: base scores
            else:
                scores = engine.scores_for_interval(interval, events)
                stats.score_updates += len(events)
            for event, score in zip(events, scores):
                candidates.append((float(score), event, interval))
        candidates.sort(key=lambda row: (-row[0], row[1], row[2]))

        expansions = []
        for score, event, interval in candidates[: self._branch_factor]:
            child = dict(mapping)
            child[event] = interval
            expansions.append((utility + score, child))
        stats.nodes_explored += len(expansions)
        return expansions
