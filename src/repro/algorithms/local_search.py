"""Local-search refinement over SES schedules (extension scope).

Greedy solutions can be improved after the fact: the paper stops at GRD,
but a natural follow-up (and our Abl-5 ablation) is hill climbing over
three neighborhoods:

* **relocate** — move one scheduled event to a different interval;
* **replace** — swap a scheduled event for an unscheduled one in place;
* **exchange** — swap the intervals of two scheduled events.

All moves preserve ``|S|``, so the refined schedule stays a valid answer
to the same SES query.  Moves are evaluated through exact utility deltas
on the affected intervals only, applied first-improvement over a seeded
random ordering, and iterated until a full pass finds nothing (or
``max_rounds`` is hit).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import ScheduleResult, SolverStats
from repro.algorithms.registry import register_solver
from repro.core.engine import EngineSpec, ScoreEngine, resolve_engine_spec
from repro.core.feasibility import FeasibilityChecker
from repro.core.instance import SESInstance
from repro.core.schedule import Assignment, Schedule
from repro.interactive.locks import LockSet
from repro.utils.rng import ensure_rng
from repro.utils.timing import Stopwatch

__all__ = ["LocalSearchRefiner"]


@register_solver(
    summary="relocate/replace/exchange hill climbing over an existing schedule",
    kind="refiner",
    seeded=True,
    anytime=True,
    strict_capable=False,
)
class LocalSearchRefiner:
    """First-improvement hill climber over relocate/replace/exchange moves."""

    name = "LS"

    def __init__(
        self,
        engine: EngineSpec | str | None = None,
        max_rounds: int = 50,
        seed: int | np.random.Generator | None = None,
        *,
        engine_kind: str | None = None,
    ):
        if max_rounds <= 0:
            raise ValueError(f"max_rounds must be positive, got {max_rounds}")
        self._engine_spec = resolve_engine_spec(
            engine, engine_kind, owner=type(self).__name__
        )
        self._max_rounds = max_rounds
        self._rng = ensure_rng(seed)

    # ------------------------------------------------------------------
    def refine(
        self,
        instance: SESInstance,
        schedule: Schedule,
        *,
        engine: "ScoreEngine | None" = None,
        locks: LockSet | None = None,
    ) -> ScheduleResult:
        """Improve ``schedule`` in place-semantics-free fashion; returns a result.

        The input schedule is not mutated; the result carries a copy.
        ``engine`` injects a pre-built engine for ``instance`` (reset
        before use) so repeat callers — GRASP's per-restart polish, a
        session refining many schedules — skip re-paying construction;
        results are identical either way.

        ``locks`` freezes cells during the climb: pinned events are never
        relocated, replaced or exchanged, and no move lands on a
        forbidden (interval, event) cell.  The input schedule must
        already honor the locks (:class:`~repro.core.errors.LockError`
        otherwise).
        """
        locks = LockSet.coerce(locks)
        if locks is not None:
            locks.validate_for(instance)
            locks.check_schedule(schedule)
        stats = SolverStats()
        stopwatch = Stopwatch()
        with stopwatch:
            if engine is None:
                engine = self._engine_spec.build(instance)
            else:
                if engine.instance is not instance:
                    raise ValueError(
                        "injected engine was built for a different instance"
                    )
                engine.reset()
            checker = FeasibilityChecker(instance)
            for assignment in schedule:
                checker.apply(assignment)
                engine.assign(assignment.event, assignment.interval)

            for _ in range(self._max_rounds):
                improved = self._one_round(
                    instance, engine, checker, stats, locks=locks
                )
                if not improved:
                    break

            utility = engine.total_utility()
        return ScheduleResult(
            solver=self.name,
            schedule=engine.schedule,
            utility=utility,
            runtime_seconds=stopwatch.elapsed,
            requested_k=len(schedule),
            stats=stats,
        )

    def refine_result(
        self, instance: SESInstance, result: ScheduleResult
    ) -> ScheduleResult:
        """Refine another solver's output, relabelling the solver name."""
        refined = self.refine(instance, result.schedule)
        return ScheduleResult(
            solver=f"{result.solver}+{self.name}",
            schedule=refined.schedule,
            utility=refined.utility,
            runtime_seconds=result.runtime_seconds + refined.runtime_seconds,
            requested_k=result.requested_k,
            stats=refined.stats,
        )

    # ------------------------------------------------------------------
    def _one_round(self, instance, engine, checker, stats, *, locks=None) -> bool:
        """Try every move once in random order; True if any was applied."""
        improved = False
        improved |= self._relocate_pass(instance, engine, checker, stats, locks)
        improved |= self._replace_pass(instance, engine, checker, stats, locks)
        improved |= self._exchange_pass(instance, engine, checker, stats, locks)
        return improved

    def _relocate_pass(self, instance, engine, checker, stats, locks=None) -> bool:
        improved = False
        events = list(engine.schedule.scheduled_events())
        self._rng.shuffle(events)
        if locks is not None:
            # filtered after the shuffle so the RNG stream (and therefore
            # the unlocked trajectory) is untouched when locks bind nothing
            pinned = locks.pinned_events
            events = [event for event in events if event not in pinned]
        for event in events:
            source = engine.schedule.interval_of(event)
            # gain of removing = -(utility drop); compute via re-add score
            old_assignment = Assignment(event=event, interval=source)
            engine.unassign(event)
            checker.unapply(old_assignment)
            reinsert_gain = engine.score(event, source)

            best_interval, best_gain = source, reinsert_gain
            intervals = self._rng.permutation(instance.n_intervals)
            for interval in intervals:
                interval = int(interval)
                if interval == source:
                    continue
                if locks is not None and locks.is_forbidden(interval, event):
                    continue
                candidate = Assignment(event=event, interval=interval)
                if not checker.is_valid(candidate):
                    continue
                gain = engine.score(event, interval)
                stats.moves_evaluated += 1
                if gain > best_gain + 1e-12:
                    best_interval, best_gain = interval, gain

            chosen = Assignment(event=event, interval=best_interval)
            checker.apply(chosen)
            engine.assign(event, best_interval)
            if best_interval != source:
                stats.moves_accepted += 1
                improved = True
        return improved

    def _replace_pass(self, instance, engine, checker, stats, locks=None) -> bool:
        improved = False
        scheduled = list(engine.schedule.scheduled_events())
        unscheduled = [
            event
            for event in range(instance.n_events)
            if not engine.schedule.contains_event(event)
        ]
        if not unscheduled:
            return False
        self._rng.shuffle(scheduled)
        if locks is not None:
            pinned = locks.pinned_events
            scheduled = [event for event in scheduled if event not in pinned]
        for event in scheduled:
            interval = engine.schedule.interval_of(event)
            old_assignment = Assignment(event=event, interval=interval)
            engine.unassign(event)
            checker.unapply(old_assignment)
            own_gain = engine.score(event, interval)

            best_event, best_gain = event, own_gain
            for candidate_event in unscheduled:
                if locks is not None and locks.is_forbidden(
                    interval, candidate_event
                ):
                    continue
                candidate = Assignment(event=candidate_event, interval=interval)
                if not checker.is_valid(candidate):
                    continue
                gain = engine.score(candidate_event, interval)
                stats.moves_evaluated += 1
                if gain > best_gain + 1e-12:
                    best_event, best_gain = candidate_event, gain

            chosen = Assignment(event=best_event, interval=interval)
            checker.apply(chosen)
            engine.assign(best_event, interval)
            if best_event != event:
                unscheduled.remove(best_event)
                unscheduled.append(event)
                stats.moves_accepted += 1
                improved = True
        return improved

    def _exchange_pass(self, instance, engine, checker, stats, locks=None) -> bool:
        improved = False
        events = list(engine.schedule.scheduled_events())
        self._rng.shuffle(events)
        if locks is not None:
            pinned = locks.pinned_events
            events = [event for event in events if event not in pinned]
        for position, first in enumerate(events):
            for second in events[position + 1 :]:
                if not engine.schedule.contains_event(
                    first
                ) or not engine.schedule.contains_event(second):
                    continue
                interval_a = engine.schedule.interval_of(first)
                interval_b = engine.schedule.interval_of(second)
                if interval_a == interval_b:
                    continue
                if locks is not None and (
                    locks.is_forbidden(interval_b, first)
                    or locks.is_forbidden(interval_a, second)
                ):
                    continue
                before = engine.interval_utility(interval_a) + engine.interval_utility(
                    interval_b
                )
                assignment_a = Assignment(event=first, interval=interval_a)
                assignment_b = Assignment(event=second, interval=interval_b)
                engine.unassign(first)
                checker.unapply(assignment_a)
                engine.unassign(second)
                checker.unapply(assignment_b)

                swapped_a = Assignment(event=first, interval=interval_b)
                swapped_b = Assignment(event=second, interval=interval_a)
                stats.moves_evaluated += 1
                if checker.is_valid(swapped_a) and self._valid_after(
                    checker, swapped_a, swapped_b
                ):
                    checker.apply(swapped_a)
                    engine.assign(first, interval_b)
                    checker.apply(swapped_b)
                    engine.assign(second, interval_a)
                    after = engine.interval_utility(
                        interval_a
                    ) + engine.interval_utility(interval_b)
                    if after > before + 1e-12:
                        stats.moves_accepted += 1
                        improved = True
                        continue
                    # not better: revert the swap
                    engine.unassign(first)
                    checker.unapply(swapped_a)
                    engine.unassign(second)
                    checker.unapply(swapped_b)
                # restore original placement
                checker.apply(assignment_a)
                engine.assign(first, interval_a)
                checker.apply(assignment_b)
                engine.assign(second, interval_b)
        return improved

    @staticmethod
    def _valid_after(checker, first_assignment, second_assignment) -> bool:
        """Check the second half of a swap assuming the first half applies."""
        checker.apply(first_assignment)
        valid = checker.is_valid(second_assignment)
        checker.unapply(first_assignment)
        return valid
