"""SES solvers: the paper's GRD + baselines, and extension heuristics.

Paper methods (Sections III–IV):

* :class:`GreedyScheduler` (GRD) — Algorithm 1, list-based.
* :class:`TopKScheduler` (TOP) — top-k initial scores, no updates.
* :class:`RandomScheduler` (RAND) — random valid assignments.

Reproduction infrastructure and extensions:

* :class:`LazyGreedyScheduler` — heap GRD, identical selections, faster pops.
* :class:`ExhaustiveScheduler` — exact optimum on tiny instances.
* :class:`LocalSearchRefiner` — relocate/replace/exchange hill climbing.
* :class:`AnnealingScheduler` — Metropolis search with geometric cooling.
* :class:`BeamSearchScheduler` — width-w generalization of GRD.
* :class:`GraspScheduler` — randomized-greedy restarts + local search.
* :class:`IncrementalScheduler` — online maintenance under arrivals,
  cancellations, new competition and budget growth.
"""

from repro.algorithms.annealing import AnnealingScheduler
from repro.algorithms.beam import BeamSearchScheduler
from repro.algorithms.base import ScheduleResult, Scheduler, SolverStats
from repro.algorithms.registry import (
    SolverInfo,
    SolverRegistry,
    register_solver,
    solver_registry,
)
from repro.algorithms.exhaustive import (
    ExhaustiveScheduler,
    SearchBudgetExceeded,
    optimal_utility,
)
from repro.algorithms.grasp import GraspScheduler
from repro.algorithms.greedy import GreedyScheduler
from repro.algorithms.incremental import IncrementalScheduler
from repro.algorithms.greedy_heap import LazyGreedyScheduler
from repro.algorithms.local_search import LocalSearchRefiner
from repro.algorithms.random_schedule import RandomScheduler
from repro.algorithms.top import TopKScheduler

__all__ = [
    "AnnealingScheduler",
    "BeamSearchScheduler",
    "ExhaustiveScheduler",
    "GraspScheduler",
    "GreedyScheduler",
    "IncrementalScheduler",
    "LazyGreedyScheduler",
    "LocalSearchRefiner",
    "RandomScheduler",
    "ScheduleResult",
    "Scheduler",
    "SearchBudgetExceeded",
    "SolverInfo",
    "SolverRegistry",
    "SolverStats",
    "TopKScheduler",
    "optimal_utility",
    "register_solver",
    "solver_registry",
]
