"""Common scaffolding for SES solvers.

Every solver consumes an :class:`~repro.core.instance.SESInstance` plus the
budget ``k`` and produces a :class:`ScheduleResult`: the feasible schedule,
its exact total utility, wall-clock time and per-solver counters.  Solvers
never raise when fewer than ``k`` valid assignments exist (a tiny instance
can simply run out of feasible slots) unless ``strict=True`` — mirroring the
paper's GRD, which terminates when its assignment list empties.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field, fields

import numpy as np

from repro.core.engine import EngineSpec, ScoreEngine, resolve_engine_spec
from repro.core.errors import (
    InfeasibleAssignmentError,
    LockError,
    ScheduleSizeError,
)
from repro.core.feasibility import FeasibilityChecker, is_schedule_feasible
from repro.core.instance import SESInstance
from repro.core.schedule import Schedule
from repro.core.scoreplane import ScorePlane
from repro.interactive.locks import LockSet

__all__ = ["SolverStats", "ScheduleResult", "Scheduler"]


@dataclass(slots=True)
class SolverStats:
    """Operation counters exposed by every solver (all start at zero).

    ``initial_scores`` counts Eq. 4 evaluations during list construction,
    ``score_updates`` counts re-evaluations after selections, ``pops``
    counts candidate extractions (valid or not), and ``iterations`` counts
    accepted assignments.  The paper's complexity analysis (Section III)
    is phrased in exactly these quantities, so the benchmark suite reports
    them next to wall-clock time.
    """

    initial_scores: int = 0
    score_updates: int = 0
    pops: int = 0
    iterations: int = 0
    nodes_explored: int = 0
    moves_evaluated: int = 0
    moves_accepted: int = 0

    def as_dict(self) -> dict[str, int]:
        """Every counter by field name — new counters appear automatically."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of one solver run."""

    solver: str
    schedule: Schedule
    utility: float
    runtime_seconds: float
    requested_k: int
    stats: SolverStats = field(default_factory=SolverStats)

    @property
    def achieved_k(self) -> int:
        """Number of assignments actually placed (``<= requested_k``)."""
        return len(self.schedule)

    @property
    def complete(self) -> bool:
        """Whether the solver placed all ``k`` requested assignments."""
        return self.achieved_k == self.requested_k

    def summary(self) -> str:
        return (
            f"{self.solver}: utility={self.utility:.4f} "
            f"k={self.achieved_k}/{self.requested_k} "
            f"time={self.runtime_seconds * 1e3:.2f}ms"
        )


class Scheduler(ABC):
    """Base class wiring together engine construction, timing and validation.

    Subclasses implement :meth:`_solve`, receiving a fresh engine and
    feasibility checker; the base class measures wall-clock time, computes
    the final utility from the engine state, asserts feasibility (a cheap
    invariant that has caught real bugs) and packages the result.

    Parameters
    ----------
    engine:
        An :class:`~repro.core.engine.EngineSpec` (or bare kind string /
        ``None`` for the vectorized default); every solver is
        engine-agnostic, which is what makes the Abl-1 ablation possible.
        Pick ``EngineSpec(kind="sparse")`` (with a sparse-backed interest
        matrix) for Meetup-scale populations.
    strict:
        When True, raise :class:`ScheduleSizeError` if fewer than ``k``
        assignments were placed.
    engine_kind:
        Deprecated alias for ``engine`` taking the bare kind string; emits
        a :class:`DeprecationWarning`.
    """

    #: Human-facing solver name; subclasses override.
    name: str = "abstract"

    def __init__(
        self,
        engine: EngineSpec | str | None = None,
        strict: bool = False,
        *,
        engine_kind: str | None = None,
    ):
        self._engine_spec = resolve_engine_spec(
            engine, engine_kind, owner=type(self).__name__
        )
        self._strict = strict

    @property
    def engine_spec(self) -> EngineSpec:
        return self._engine_spec

    @property
    def engine_kind(self) -> str:
        """Back-compat accessor: the kind of :attr:`engine_spec`."""
        return self._engine_spec.kind

    def solve(
        self,
        instance: SESInstance,
        k: int,
        *,
        engine: ScoreEngine | None = None,
        plane: ScorePlane | None = None,
        locks: "LockSet | None" = None,
    ) -> ScheduleResult:
        """Run the solver and return a validated, timed result.

        ``engine`` lets a caller that amortizes engine construction across
        many requests (:class:`repro.api.ScheduleSession`) inject a
        pre-built engine; it must belong to ``instance`` and is reset
        before use, so the result is identical to a one-shot solve.

        ``plane`` additionally injects a warm
        :class:`~repro.core.scoreplane.ScorePlane` of initial (Eq. 4,
        empty-schedule) scores.  The plane supplies the engine (passing a
        second, different engine is an error); solvers whose first move
        is a full score sweep — GRD, the lazy heap, TOP, beam roots,
        GRASP constructions — read the cached matrix instead of
        re-filling it, and the selection is bit-identical to a cold
        solve (the plane's warm-start contract).

        ``locks`` injects organizer pin/forbid constraints
        (:class:`~repro.interactive.locks.LockSet`).  Pins are committed
        into the result (and count toward ``k``); forbidden cells are
        never selected.  ``None`` or an empty lock set takes the exact
        unlocked code path, so the result is bit-identical to an
        unlocked solve; the base class re-checks the final schedule
        against the locks, so no solver can silently drop a pin or leak
        a forbidden pair.
        """
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        k = min(k, instance.n_events)
        locks = LockSet.coerce(locks)
        if locks is not None:
            locks.validate_for(instance)
            if len(locks.pins) > k:
                raise LockError(
                    f"{len(locks.pins)} events are pinned but the budget "
                    f"allows only k={k} assignments"
                )
        if plane is not None:
            if engine is not None and engine is not plane.engine:
                raise ValueError(
                    "pass either engine= or plane= (the plane supplies "
                    "its own engine), not two different engines"
                )
            engine = plane.engine
        if engine is None:
            engine = self._engine_spec.build(instance)
        else:
            if engine.instance is not instance:
                raise ValueError(
                    "injected engine was built for a different instance"
                )
            engine.reset()
        checker = FeasibilityChecker(instance)
        stats = SolverStats()

        started = time.perf_counter()
        self._solve(instance, k, engine, checker, stats, plane=plane, locks=locks)
        elapsed = time.perf_counter() - started

        schedule = engine.schedule
        if not is_schedule_feasible(instance, schedule):
            raise AssertionError(
                f"solver {self.name} produced an infeasible schedule — "
                f"this is a bug in the solver"
            )
        if locks is not None:
            try:
                locks.check_schedule(schedule)
            except LockError as exc:
                raise AssertionError(
                    f"solver {self.name} violated its locks — this is a "
                    f"bug in the solver: {exc}"
                ) from exc
        if self._strict and len(schedule) < k:
            raise ScheduleSizeError(
                f"{self.name} placed only {len(schedule)} of {k} assignments"
            )
        return ScheduleResult(
            solver=self.name,
            schedule=schedule,
            utility=engine.total_utility(),
            runtime_seconds=elapsed,
            requested_k=k,
            stats=stats,
        )

    @abstractmethod
    def _solve(
        self,
        instance: SESInstance,
        k: int,
        engine: ScoreEngine,
        checker: FeasibilityChecker,
        stats: SolverStats,
        *,
        plane: ScorePlane | None = None,
        locks: LockSet | None = None,
    ) -> None:
        """Populate ``engine.schedule`` with up to ``k`` valid assignments.

        ``plane``, when given, caches the empty-schedule score matrix
        (see :meth:`_base_scores`); solvers that never sweep initial
        scores simply ignore it.  ``locks``, when given, is a validated,
        non-empty :class:`LockSet` whose pin count fits in ``k`` — the
        solver must commit every pin and never select a forbidden cell
        (the base class re-checks both).
        """

    @staticmethod
    def _base_scores(
        instance: SESInstance,
        engine: ScoreEngine,
        stats: SolverStats,
        plane: ScorePlane | None,
        locks: LockSet | None = None,
    ) -> "np.ndarray":
        """The ``(n_intervals, n_events)`` empty-schedule Eq. 4 matrix.

        Cold path: one batched row fill per interval (what GRD's
        Algorithm 1 lines 2–4 always did).  Warm path: the plane's
        cached matrix, re-scoring only rows dirtied since the last use.
        Either way the caller gets a private copy it may mutate, and
        ``stats.initial_scores`` counts the Eq. 4 evaluations actually
        performed — equal to ``|T| * |E|`` cold, typically ~0 warm.

        With ``locks``, forbidden cells and pinned events' columns come
        back as ``-inf`` (pinned events are committed separately via
        :meth:`_apply_pins`, so no sweep may pick them again).
        """
        if plane is not None:
            spent = plane.cells_filled + plane.cells_refreshed
            if locks is None:
                matrix = np.array(plane.ensure(), copy=True)
            else:
                matrix = plane.masked_copy(
                    sorted(locks.forbids), sorted(locks.pinned_events)
                )
            stats.initial_scores += (
                plane.cells_filled + plane.cells_refreshed - spent
            )
            return matrix
        all_events = list(range(instance.n_events))
        matrix = np.empty((instance.n_intervals, instance.n_events))
        for interval in range(instance.n_intervals):
            matrix[interval] = engine.scores_for_interval(interval, all_events)
            stats.initial_scores += instance.n_events
        if locks is not None:
            for event in locks.pinned_events:
                matrix[:, event] = -np.inf
            for interval, event in locks.forbids:
                matrix[interval, event] = -np.inf
        return matrix

    @staticmethod
    def _apply_pins(
        locks: LockSet,
        engine: ScoreEngine,
        checker: FeasibilityChecker,
        stats: SolverStats | None = None,
    ) -> None:
        """Commit every pinned assignment, in canonical pin order.

        Raises :class:`LockError` (naming the offending pin) when the
        pins are not jointly feasible — two pinned events sharing a
        location in one interval, or pins overrunning theta.  ``stats``
        counts each pin as an accepted assignment; pass ``None`` from
        solvers whose ``iterations`` counter means something else
        (GRASP's restart count).
        """
        for assignment in locks.pinned_assignments():
            try:
                checker.apply(assignment)
            except InfeasibleAssignmentError as exc:
                raise LockError(
                    f"pinned assignment {assignment} cannot be honored: {exc}"
                ) from exc
            engine.assign(assignment.event, assignment.interval)
            if stats is not None:
                stats.iterations += 1
