"""TOP — the paper's first baseline (Section IV.A).

TOP "computes the assignment scores for all the events and selects the
events with top-k score values": every (event, interval) pair is scored
once against the *empty* schedule, the pairs are ranked, and the best ``k``
valid ones are committed in rank order.  No score is ever updated, which is
exactly why TOP underperforms — initial scores ignore cannibalization, so
TOP stacks mutually-attractive events into the same popular intervals and
splits the same users between them.

Ties are broken by lowest (interval, event) flat index for determinism.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import Scheduler, SolverStats
from repro.algorithms.registry import register_solver
from repro.core.engine import ScoreEngine
from repro.core.feasibility import FeasibilityChecker
from repro.core.instance import SESInstance
from repro.core.schedule import Assignment
from repro.core.scoreplane import ScorePlane
from repro.interactive.locks import LockSet

__all__ = ["TopKScheduler"]


@register_solver(summary="the paper's TOP baseline: rank initial scores, no updates")
class TopKScheduler(Scheduler):
    """Rank all assignments by initial score; take the best valid ``k``."""

    name = "TOP"

    def _solve(
        self,
        instance: SESInstance,
        k: int,
        engine: ScoreEngine,
        checker: FeasibilityChecker,
        stats: SolverStats,
        *,
        plane: ScorePlane | None = None,
        locks: LockSet | None = None,
    ) -> None:
        # TOP is *entirely* initial scores, so a warm plane turns the
        # whole scoring phase into a cache read
        matrix = self._base_scores(instance, engine, stats, plane, locks)
        if locks is not None:
            self._apply_pins(locks, engine, checker, stats)

        # stable flat argsort descending: ties resolve to the lowest
        # (interval, event) flat index, matching the documented tiebreak
        order = np.argsort(-matrix, axis=None, kind="stable")
        for flat in order:
            if len(engine.schedule) >= k:
                break
            interval, event = divmod(int(flat), instance.n_events)
            if not np.isfinite(matrix[interval, event]):
                break  # only masked lock cells remain in the ranking
            stats.pops += 1
            assignment = Assignment(event=event, interval=interval)
            if not checker.is_valid(assignment):
                continue
            checker.apply(assignment)
            engine.assign(event, interval)
            stats.iterations += 1
