"""GRASP — greedy randomized adaptive search for SES (extension scope).

GRD commits deterministically to the top-scored assignment; GRASP instead
samples each step uniformly from a *restricted candidate list* (the
assignments whose score is within ``alpha`` of the step's best), builds a
complete randomized-greedy schedule, polishes it with local search, and
keeps the best of several restarts.

``alpha = 0`` degenerates to (tie-randomized) GRD; ``alpha = 1`` is
uniform over all positive-gain assignments.  GRASP is the classic antidote
to greedy's "first pick locks the trajectory" weakness and complements the
beam-search ablation: beam widens the frontier, GRASP diversifies across
restarts.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import Scheduler, SolverStats
from repro.algorithms.local_search import LocalSearchRefiner
from repro.algorithms.registry import register_solver
from repro.core.engine import EngineSpec, ScoreEngine
from repro.core.feasibility import FeasibilityChecker
from repro.core.instance import SESInstance
from repro.core.schedule import Assignment
from repro.core.scoreplane import ScorePlane
from repro.interactive.locks import LockSet
from repro.utils.rng import ensure_rng

__all__ = ["GraspScheduler"]


@register_solver(
    summary="multi-restart randomized greedy with local-search polishing",
    seeded=True,
    anytime=True,
    default_params={"restarts": 5, "alpha": 0.15},
)
class GraspScheduler(Scheduler):
    """Multi-restart randomized greedy with local-search polishing."""

    name = "GRASP"

    def __init__(
        self,
        engine: EngineSpec | str | None = None,
        strict: bool = False,
        seed: int | np.random.Generator | None = None,
        restarts: int = 5,
        alpha: float = 0.15,
        polish: bool = True,
        polish_rounds: int = 3,
        *,
        engine_kind: str | None = None,
    ):
        super().__init__(engine, strict=strict, engine_kind=engine_kind)
        if restarts <= 0:
            raise ValueError(f"restarts must be positive, got {restarts}")
        if not 0.0 <= alpha <= 1.0:
            raise ValueError(f"alpha must lie in [0, 1], got {alpha}")
        if polish_rounds <= 0:
            raise ValueError(f"polish_rounds must be positive, got {polish_rounds}")
        self._rng = ensure_rng(seed)
        self._restarts = restarts
        self._alpha = alpha
        self._polish = polish
        self._polish_rounds = polish_rounds

    # ------------------------------------------------------------------
    def _solve(
        self,
        instance: SESInstance,
        k: int,
        engine: ScoreEngine,
        checker: FeasibilityChecker,
        stats: SolverStats,
        *,
        plane: "ScorePlane | None" = None,
        locks: LockSet | None = None,
    ) -> None:
        # Every restart's first RCL round scores the same empty-schedule
        # state, so the base matrix is computed once (or read warm from
        # the plane) and shared across restarts; one work engine is
        # likewise reset and reused for every construction and polish.
        base = self._base_scores(instance, engine, stats, plane, locks)
        work_engine = self._engine_spec.build(instance)
        best_utility = -1.0
        best_mapping: dict[int, int] = {}
        for _ in range(self._restarts):
            work_engine.reset()
            mapping, utility = self._one_construction(
                instance, k, stats, base, work_engine, locks
            )
            if self._polish and mapping:
                mapping, utility = self._polish_mapping(
                    instance, mapping, stats, work_engine, locks
                )
            if utility > best_utility:
                best_utility, best_mapping = utility, mapping
            stats.iterations += 1

        for event, interval in sorted(best_mapping.items()):
            checker.apply(Assignment(event, interval))
            engine.assign(event, interval)

    # ------------------------------------------------------------------
    def _one_construction(
        self,
        instance: SESInstance,
        k: int,
        stats: SolverStats,
        base: np.ndarray,
        engine: ScoreEngine,
        locks: LockSet | None = None,
    ) -> tuple[dict[int, int], float]:
        """One randomized-greedy pass: RCL sampling until k or stuck."""
        checker = FeasibilityChecker(instance)
        utility = 0.0
        # Pins open every construction; the base fast-path only holds
        # while the work schedule is empty, so pinned restarts score
        # their first RCL round through the engine instead.
        first_round = locks is None or not locks.pins
        if locks is not None:
            self._apply_pins(locks, engine, checker)
        while len(engine.schedule) < k:
            candidates: list[tuple[float, int, int]] = []
            best_score = 0.0
            for interval in range(instance.n_intervals):
                events = [
                    e
                    for e in range(instance.n_events)
                    if not engine.schedule.contains_event(e)
                    and not (
                        locks is not None and locks.is_forbidden(interval, e)
                    )
                    and checker.is_valid(Assignment(e, interval))
                ]
                if not events:
                    continue
                if first_round:
                    scores = base[interval, events]
                else:
                    scores = engine.scores_for_interval(interval, events)
                    stats.score_updates += len(events)
                for event, score in zip(events, scores):
                    candidates.append((float(score), event, interval))
                    best_score = max(best_score, float(score))
            first_round = False
            if not candidates:
                break
            threshold = (1.0 - self._alpha) * best_score
            restricted = [row for row in candidates if row[0] >= threshold]
            score, event, interval = restricted[
                int(self._rng.integers(len(restricted)))
            ]
            checker.apply(Assignment(event, interval))
            engine.assign(event, interval)
            utility += score
            stats.pops += 1
        return engine.schedule.as_mapping(), engine.total_utility()

    def _polish_mapping(
        self,
        instance: SESInstance,
        mapping: dict[int, int],
        stats: SolverStats,
        engine: ScoreEngine,
        locks: LockSet | None = None,
    ) -> tuple[dict[int, int], float]:
        from repro.core.schedule import Schedule

        schedule = Schedule(
            instance,
            (Assignment(event, interval) for event, interval in mapping.items()),
        )
        refiner = LocalSearchRefiner(
            self._engine_spec,
            max_rounds=self._polish_rounds,
            seed=self._rng,
        )
        refined = refiner.refine(instance, schedule, engine=engine, locks=locks)
        stats.moves_accepted += refined.stats.moves_accepted
        return refined.schedule.as_mapping(), refined.utility
