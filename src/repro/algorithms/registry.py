"""The solver registry: one catalog of every scheduling method in the library.

Before the :mod:`repro.api` facade existed there were three divergent
solver lists (the CLI's hand-written dict, ``runner.paper_methods``, and
direct class imports in benchmarks/examples), each exposing a different
subset.  Every solver module now declares itself once via
:func:`register_solver`, and every entry point derives its choices from
:data:`solver_registry` — a new solver file shows up in the CLI, the
runner and the session API the moment it is imported.

Capabilities are part of the registration so callers can dispatch without
``isinstance`` probing:

* ``kind`` — ``"batch"`` (one-shot ``solve(instance, k)``), ``"refiner"``
  (improves an existing schedule), or ``"online"`` (stateful maintainer
  constructed around a live instance);
* ``seeded`` — the constructor accepts ``seed=``;
* ``anytime`` — quality improves with a tunable budget parameter;
* ``strict_capable`` — the constructor accepts ``strict=``.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator, Mapping
from dataclasses import dataclass, field
from typing import Any

from repro.core.engine import EngineSpec

__all__ = [
    "SolverInfo",
    "SolverRegistry",
    "register_solver",
    "solver_registry",
]

#: Valid values for :attr:`SolverInfo.kind`.
SOLVER_KINDS: tuple[str, ...] = ("batch", "refiner", "online")


@dataclass(frozen=True)
class SolverInfo:
    """One registry entry: the solver class plus its declared capabilities."""

    name: str
    cls: type
    display_name: str
    summary: str
    kind: str = "batch"
    seeded: bool = False
    anytime: bool = False
    strict_capable: bool = True
    default_params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in SOLVER_KINDS:
            raise ValueError(
                f"unknown solver kind {self.kind!r}; choose from {SOLVER_KINDS}"
            )

    @property
    def module(self) -> str:
        """The defining module, e.g. ``"repro.algorithms.greedy"``."""
        return self.cls.__module__

    @property
    def one_shot(self) -> bool:
        """Whether the solver answers a one-shot ``solve(instance, k)``."""
        return self.kind == "batch"

    def describe(self) -> str:
        flags = [self.kind]
        if self.seeded:
            flags.append("seeded")
        if self.anytime:
            flags.append("anytime")
        if self.strict_capable:
            flags.append("strict-capable")
        return f"{self.name} ({self.display_name}): {self.summary} [{', '.join(flags)}]"


class SolverRegistry:
    """Name -> :class:`SolverInfo` catalog with construction helpers."""

    def __init__(self) -> None:
        self._infos: dict[str, SolverInfo] = {}

    # -- registration ---------------------------------------------------
    def register(
        self,
        cls: type,
        *,
        name: str | None = None,
        summary: str = "",
        kind: str = "batch",
        seeded: bool = False,
        anytime: bool = False,
        strict_capable: bool = True,
        default_params: Mapping[str, Any] | None = None,
    ) -> type:
        """Add ``cls`` under ``name`` (default: ``cls.name`` lowercased)."""
        display_name = getattr(cls, "name", cls.__name__)
        key = name if name is not None else display_name.lower()
        existing = self._infos.get(key)
        if existing is not None and existing.cls is not cls:
            raise ValueError(
                f"solver name {key!r} already registered by "
                f"{existing.cls.__qualname__}"
            )
        self._infos[key] = SolverInfo(
            name=key,
            cls=cls,
            display_name=display_name,
            summary=summary,
            kind=kind,
            seeded=seeded,
            anytime=anytime,
            strict_capable=strict_capable,
            default_params=dict(default_params or {}),
        )
        return cls

    # -- lookup ---------------------------------------------------------
    def get(self, name: str) -> SolverInfo:
        try:
            return self._infos[name]
        except KeyError:
            raise ValueError(
                f"unknown solver {name!r}; choose from {sorted(self._infos)}"
            ) from None

    def names(self) -> tuple[str, ...]:
        """Every registered name, sorted."""
        return tuple(sorted(self._infos))

    def one_shot_names(self) -> tuple[str, ...]:
        """Names answering one-shot ``solve(instance, k)`` — CLI choices."""
        return tuple(
            sorted(name for name, info in self._infos.items() if info.one_shot)
        )

    def __contains__(self, name: object) -> bool:
        return name in self._infos

    def __iter__(self) -> Iterator[SolverInfo]:
        return iter(self._infos[name] for name in sorted(self._infos))

    def __len__(self) -> int:
        return len(self._infos)

    # -- construction ---------------------------------------------------
    def create(
        self,
        name: str,
        *,
        engine: EngineSpec | str | None = None,
        seed: int | None = None,
        strict: bool = False,
        **params: Any,
    ) -> Any:
        """Instantiate the named solver with capability-aware arguments.

        ``engine`` is forwarded as the solver's engine spec; ``seed`` only
        to solvers registered as ``seeded`` (an explicit seed for a
        deterministic solver is an error, not silently dropped); ``strict``
        only to ``strict_capable`` solvers.  ``params`` override the
        registered ``default_params``.
        """
        info = self.get(name)
        if info.kind == "online":
            raise ValueError(
                f"solver {name!r} is an online maintainer; construct "
                f"{info.cls.__name__}(instance, k, ...) directly"
            )
        kwargs: dict[str, Any] = dict(info.default_params)
        kwargs.update(params)
        if engine is not None:
            kwargs["engine"] = EngineSpec.coerce(engine)
        if seed is not None:
            if not info.seeded:
                raise ValueError(
                    f"solver {name!r} is deterministic; seed= is not accepted"
                )
            kwargs["seed"] = seed
        if strict:
            if not info.strict_capable:
                raise ValueError(f"solver {name!r} does not support strict=")
            kwargs["strict"] = True
        return info.cls(**kwargs)


#: The process-wide registry; populated on ``import repro.algorithms``.
solver_registry = SolverRegistry()


def register_solver(
    name: str | None = None,
    *,
    summary: str = "",
    kind: str = "batch",
    seeded: bool = False,
    anytime: bool = False,
    strict_capable: bool = True,
    default_params: Mapping[str, Any] | None = None,
    registry: SolverRegistry | None = None,
) -> Callable[[type], type]:
    """Class decorator registering a solver into :data:`solver_registry`."""

    def decorate(cls: type) -> type:
        (registry or solver_registry).register(
            cls,
            name=name,
            summary=summary,
            kind=kind,
            seeded=seeded,
            anytime=anytime,
            strict_capable=strict_capable,
            default_params=default_params,
        )
        return cls

    return decorate
