"""RAND — the paper's second baseline: random valid assignments.

RAND "assigns events to intervals, randomly".  We draw a uniform random
permutation of all (event, interval) pairs and commit each pair that is
valid until ``k`` assignments are placed.  Scanning a permutation (rather
than rejection-sampling pairs) guarantees termination and finds a ``k``-
assignment whenever one is reachable greedily, while staying uniform over
pair orderings.

RAND performs *no* scoring at all, which is why it is the cheapest method
in Fig. 1b/1d — its entire cost is feasibility bookkeeping.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import Scheduler, SolverStats
from repro.algorithms.registry import register_solver
from repro.core.engine import EngineSpec, ScoreEngine
from repro.core.feasibility import FeasibilityChecker
from repro.core.instance import SESInstance
from repro.core.schedule import Assignment
from repro.utils.rng import ensure_rng

__all__ = ["RandomScheduler"]


@register_solver(
    summary="the paper's RAND baseline: random valid assignments", seeded=True
)
class RandomScheduler(Scheduler):
    """Commit uniformly random valid assignments until ``k`` are placed."""

    name = "RAND"

    def __init__(
        self,
        engine: EngineSpec | str | None = None,
        strict: bool = False,
        seed: int | np.random.Generator | None = None,
        *,
        engine_kind: str | None = None,
    ):
        super().__init__(engine, strict=strict, engine_kind=engine_kind)
        self._rng = ensure_rng(seed)

    def _solve(
        self,
        instance: SESInstance,
        k: int,
        engine: ScoreEngine,
        checker: FeasibilityChecker,
        stats: SolverStats,
        *,
        plane=None,  # RAND never scores, so a warm plane has nothing to offer
        locks=None,
    ) -> None:
        if locks is not None:
            self._apply_pins(locks, engine, checker, stats)
        n_pairs = instance.n_events * instance.n_intervals
        if n_pairs == 0:
            return
        order = self._rng.permutation(n_pairs)
        for flat_index in order:
            if len(engine.schedule) >= k:
                break
            event, interval = divmod(int(flat_index), instance.n_intervals)
            stats.pops += 1
            assignment = Assignment(event=event, interval=interval)
            if locks is not None and locks.is_forbidden(interval, event):
                continue  # organizer lock: this cell is never drawable
            if not checker.is_valid(assignment):
                continue
            checker.apply(assignment)
            engine.assign(event, interval)
            stats.iterations += 1
