"""GRD — the paper's greedy algorithm (Algorithm 1, Section III).

GRD materializes the assignment list ``L`` with one Eq. 4 score per
(event, interval) pair, then repeats until ``k`` assignments are placed:
pop the top-scored assignment, keep it if valid, and refresh the scores of
the assignments sharing its interval (scores elsewhere are untouched,
because Eq. 1's denominator only couples co-scheduled events).

Data-structure note.  Algorithm 1 keeps ``L`` as a list and scans it
linearly per pop; that cost model is what the paper's complexity analysis
charges (``O(sum |T| (|E| - i))`` for the pops).  We store ``L`` as a dense
``(|T|, |E|)`` score matrix instead, where *popping* is a flat ``argmax``
and *removal/invalidation* writes ``-inf`` — the same linear-scan work per
pop, executed by numpy rather than the interpreter.  The selection sequence
is exactly Algorithm 1's (ties broken by lowest flat index); only the
constant factor changes.  Matching the paper line by line:

* lines 2–4 (generate assignments)  -> :meth:`Scheduler._base_scores`
  (or a warm :class:`~repro.core.scoreplane.ScorePlane` read);
* line 6 (popTopAssgn)              -> ``argmax`` + ``-inf`` write;
* line 7 (validity check)           -> proactive: invalid cells are already
  ``-inf`` (event column on selection; interval row entries that lose
  location/resource feasibility on refresh), so every pop is valid;
* lines 10–13 (update/evict)        -> :meth:`_refresh_interval`.

The proactive invalidation is sound for the same reason the paper's lazy
eviction is: GRD only ever *adds* events, so an assignment that is
infeasible now stays infeasible forever.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import Scheduler, SolverStats
from repro.algorithms.registry import register_solver
from repro.core.engine import ScoreEngine
from repro.core.feasibility import FeasibilityChecker
from repro.core.instance import SESInstance
from repro.core.schedule import Assignment
from repro.core.scoreplane import ScorePlane
from repro.interactive.locks import LockSet

__all__ = ["GreedyScheduler"]


@register_solver(summary="the paper's greedy Algorithm 1 (list-based)")
class GreedyScheduler(Scheduler):
    """Paper-faithful GRD over a dense assignment-score matrix.

    With a warm :class:`~repro.core.scoreplane.ScorePlane` injected via
    ``solve(..., plane=)``, lines 2–4's full sweep collapses to reading
    the cached matrix (re-scoring only dirty rows) — the selection loop
    and therefore the schedule are unchanged bit for bit.
    """

    name = "GRD"

    def _solve(
        self,
        instance: SESInstance,
        k: int,
        engine: ScoreEngine,
        checker: FeasibilityChecker,
        stats: SolverStats,
        *,
        plane: ScorePlane | None = None,
        locks: LockSet | None = None,
    ) -> None:
        scores = self._base_scores(instance, engine, stats, plane, locks)
        if locks is not None:
            # commit the pins first (they count toward k), then refresh
            # each pinned interval's row — its denominators changed, and
            # newly-infeasible cells must leave L before the first pop.
            # Forbidden cells are already -inf in `scores`, so a refresh
            # can never resurrect them (survivors start from finite cells).
            self._apply_pins(locks, engine, checker, stats)
            for interval in sorted({t for t, _ in locks.pins}):
                self._refresh_interval(
                    scores, interval, instance, engine, checker, stats
                )

        while len(engine.schedule) < k:
            flat = int(np.argmax(scores))
            interval, event = divmod(flat, instance.n_events)
            if not np.isfinite(scores[interval, event]):
                break  # L is exhausted: no valid assignment remains
            stats.pops += 1

            assignment = Assignment(event=event, interval=interval)
            checker.apply(assignment)
            engine.assign(event, interval)
            stats.iterations += 1

            # the event is consumed: all its assignments leave L
            scores[:, event] = -np.inf

            if len(engine.schedule) < k:
                self._refresh_interval(
                    scores, interval, instance, engine, checker, stats
                )

    # ------------------------------------------------------------------
    @staticmethod
    def _refresh_interval(
        scores: np.ndarray,
        interval: int,
        instance: SESInstance,
        engine: ScoreEngine,
        checker: FeasibilityChecker,
        stats: SolverStats,
    ) -> None:
        """Algorithm 1 lines 10–13 for the selected interval's row.

        Every still-valid assignment at ``interval`` is rescored (its
        denominator changed); assignments that lost feasibility —
        location now occupied or resources no longer sufficient — are
        evicted by writing ``-inf``.
        """
        row = scores[interval]
        survivors = [
            event
            for event in np.flatnonzero(np.isfinite(row))
            if checker.is_valid(Assignment(event=int(event), interval=interval))
        ]
        row[:] = -np.inf
        if survivors:
            fresh = engine.scores_for_interval(interval, survivors)
            stats.score_updates += len(survivors)
            row[survivors] = fresh
