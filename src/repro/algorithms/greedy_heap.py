"""Lazy-heap GRD — an exact, faster variant of Algorithm 1 (extension).

The list-based GRD pays O(|L|) per pop.  This variant stores candidates in
a binary heap and re-validates lazily:

* each interval carries a **version** counter, bumped whenever an event is
  committed there;
* heap entries remember the version they were scored under;
* on pop, a stale entry (entry version < interval version) is *rescored
  and pushed back* instead of being accepted.

Exactness: committing an event to interval ``t`` can only *decrease*
the Eq. 4 score of pending assignments at ``t`` (diminishing returns —
``f(M) = M / (K + M)`` is concave; see :mod:`repro.core.scoring`), and
leaves other intervals' scores untouched.  Stale heap entries therefore
only ever *overstate* their true score, so the first entry popped with a
current version is the true maximum — the same selection Algorithm 1's
linear scan makes (up to ties).

The test suite verifies heap-GRD and list-GRD produce schedules of equal
utility on randomized instances (exact score ties — which arise
structurally only at score 0 — may be broken in a different order,
changing the schedule but not the utility); the Abl-2 benchmark measures
the update-count reduction.
"""

from __future__ import annotations

import heapq
import itertools

from repro.algorithms.base import Scheduler, SolverStats
from repro.algorithms.registry import register_solver
from repro.core.engine import ScoreEngine
from repro.core.feasibility import FeasibilityChecker
from repro.core.instance import SESInstance
from repro.core.schedule import Assignment

__all__ = ["LazyGreedyScheduler"]


@register_solver(summary="GRD with a lazy max-heap: same schedules, fewer updates")
class LazyGreedyScheduler(Scheduler):
    """GRD with a lazily-revalidated max-heap candidate store."""

    name = "GRD-heap"

    def _solve(
        self,
        instance: SESInstance,
        k: int,
        engine: ScoreEngine,
        checker: FeasibilityChecker,
        stats: SolverStats,
    ) -> None:
        tiebreak = itertools.count()
        # heap rows: (-score, insertion order, event, interval, version)
        heap: list[tuple[float, int, int, int, int]] = []
        interval_version = [0] * instance.n_intervals

        all_events = list(range(instance.n_events))
        for interval in range(instance.n_intervals):
            scores = engine.scores_for_interval(interval, all_events)
            stats.initial_scores += len(all_events)
            for event, score in zip(all_events, scores):
                heap.append((-float(score), next(tiebreak), event, interval, 0))
        heapq.heapify(heap)

        while len(engine.schedule) < k and heap:
            negative_score, __, event, interval, version = heapq.heappop(heap)
            stats.pops += 1

            assignment = Assignment(event=event, interval=interval)
            if not checker.is_valid(assignment):
                continue  # lazily discard entries that can never apply again

            if version < interval_version[interval]:
                # stale: the interval changed since scoring; rescore and retry
                fresh = engine.score(event, interval)
                stats.score_updates += 1
                heapq.heappush(
                    heap,
                    (-fresh, next(tiebreak), event, interval,
                     interval_version[interval]),
                )
                continue

            checker.apply(assignment)
            engine.assign(event, interval)
            interval_version[interval] += 1
            stats.iterations += 1
