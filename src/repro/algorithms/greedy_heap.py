"""Lazy-heap GRD — an exact, faster variant of Algorithm 1 (extension).

The list-based GRD pays O(|L|) per pop.  This variant stores candidates in
a binary heap and re-validates lazily:

* each interval carries a **version** counter, bumped whenever an event is
  committed there;
* heap entries remember the version they were scored under;
* on pop, a stale entry (entry version < interval version) is *rescored
  and pushed back* instead of being accepted.

Exactness: committing an event to interval ``t`` can only *decrease*
the Eq. 4 score of pending assignments at ``t`` (diminishing returns —
``f(M) = M / (K + M)`` is concave; see :mod:`repro.core.scoring`), and
leaves other intervals' scores untouched.  Stale heap entries therefore
only ever *overstate* their true score, so the first entry popped with a
current version is the true maximum — the same selection Algorithm 1's
linear scan makes.

Ties are broken by the heap key's ``(interval, event)`` suffix — the
flat-index order GRD's ``argmax`` resolves equal scores to.  A stale
entry tying the current maximum is popped first (its overstated key
sorts at the same score but possibly lower index), rescored, and pushed
back *keyed the same way*, so duplicate marginal gains — structural on
instances with duplicated interest columns — are consumed in exactly
GRD's pick order.  The parity suite pins heap-GRD schedules to list-GRD
schedules bit for bit, duplicates included; the Abl-2 benchmark measures
the update-count reduction.

One caveat survives: once every positive-gain assignment is consumed and
the frontier degrades to ~1e-16 subtraction residues, floating point can
make a "stale" entry *under*state its true score (exact arithmetic only
ever overstates), and the last near-zero picks may land on different
intervals than GRD's — utilities agree to machine precision either way.
"""

from __future__ import annotations

import heapq
import math

from repro.algorithms.base import Scheduler, SolverStats
from repro.algorithms.registry import register_solver
from repro.core.engine import ScoreEngine
from repro.core.feasibility import FeasibilityChecker
from repro.core.instance import SESInstance
from repro.core.schedule import Assignment
from repro.core.scoreplane import ScorePlane
from repro.interactive.locks import LockSet

__all__ = ["LazyGreedyScheduler"]


@register_solver(summary="GRD with a lazy max-heap: same schedules, fewer updates")
class LazyGreedyScheduler(Scheduler):
    """GRD with a lazily-revalidated max-heap candidate store."""

    name = "GRD-heap"

    def _solve(
        self,
        instance: SESInstance,
        k: int,
        engine: ScoreEngine,
        checker: FeasibilityChecker,
        stats: SolverStats,
        *,
        plane: ScorePlane | None = None,
        locks: LockSet | None = None,
    ) -> None:
        # heap rows: (-score, interval, event, version) — the (interval,
        # event) suffix IS GRD's flat-index tie-break, and at most one
        # entry per pair is ever live, so keys are totally ordered
        heap: list[tuple[float, int, int, int]] = []
        interval_version = [0] * instance.n_intervals

        # the initial heap is the base score matrix — warm plane reads
        # skip the full sweep and seed the exact same entries.  Locked
        # cells come back -inf from _base_scores and are kept out of the
        # heap entirely; pinned intervals start at version 1, so entries
        # scored before the pins were committed rescore before acceptance.
        initial = self._base_scores(instance, engine, stats, plane, locks)
        if locks is not None:
            self._apply_pins(locks, engine, checker, stats)
            for pinned_interval, _ in locks.pins:
                interval_version[pinned_interval] += 1
        for interval in range(instance.n_intervals):
            row = initial[interval]
            for event in range(instance.n_events):
                entry = -float(row[event])
                if math.isinf(entry):
                    continue  # a lock masked this cell out of L
                heap.append((entry, interval, event, 0))
        heapq.heapify(heap)

        while len(engine.schedule) < k and heap:
            negative_score, interval, event, version = heapq.heappop(heap)
            stats.pops += 1

            assignment = Assignment(event=event, interval=interval)
            if not checker.is_valid(assignment):
                continue  # lazily discard entries that can never apply again

            if version < interval_version[interval]:
                # stale: the interval changed since scoring; rescore and
                # retry.  The batched row query — not the scalar score()
                # — is used so the refreshed value is bit-identical to
                # what GRD's row refresh computes for the same cell, and
                # ties keep resolving in GRD's exact order.
                fresh = float(
                    engine.scores_for_interval(interval, [event])[0]
                )
                stats.score_updates += 1
                heapq.heappush(
                    heap,
                    (-fresh, interval, event, interval_version[interval]),
                )
                continue

            checker.apply(assignment)
            engine.assign(event, interval)
            interval_version[interval] += 1
            stats.iterations += 1
