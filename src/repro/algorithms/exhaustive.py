"""Exact exhaustive solver — ground truth for tiny instances.

Not part of the paper (SES is strongly NP-hard, Theorem 1), but essential
infrastructure for a credible reproduction: it certifies GRD's quality
(Abl-4), anchors the Theorem-1 reduction tests, and catches scoring bugs
that heuristics would silently absorb.

The search walks events in index order; each event is either skipped or
assigned to one of the feasible intervals.  Running utility is maintained
incrementally through the engine: committing ``alpha_e^t`` adds exactly
``score(e, t)`` (Eq. 4 *is* the utility delta), so no leaf re-evaluation is
needed.  Pruning:

* **cardinality** — abandon branches that cannot still reach ``k`` events;
* **optimistic bound** — each remaining event can add at most its best
  empty-interval score (scores only shrink as intervals fill — diminishing
  returns), so a branch whose utility plus the sum of the top remaining
  optimistic scores cannot beat the incumbent is cut.

A node budget guards against accidental use on large instances.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import Scheduler, SolverStats
from repro.algorithms.registry import register_solver
from repro.core.engine import EngineSpec, ScoreEngine
from repro.core.errors import SESError
from repro.core.feasibility import FeasibilityChecker
from repro.core.instance import SESInstance
from repro.core.schedule import Assignment, Schedule

__all__ = ["ExhaustiveScheduler", "SearchBudgetExceeded", "optimal_utility"]


class SearchBudgetExceeded(SESError):
    """The exhaustive search hit its node budget before completing."""


@register_solver(
    summary="exact optimum via pruned DFS (tiny instances only)",
    default_params={"max_nodes": 2_000_000},
)
class ExhaustiveScheduler(Scheduler):
    """Optimal solver via pruned depth-first search (tiny instances only)."""

    name = "EXACT"

    def __init__(
        self,
        engine: EngineSpec | str | None = None,
        strict: bool = False,
        max_nodes: int = 2_000_000,
        *,
        engine_kind: str | None = None,
    ):
        super().__init__(engine, strict=strict, engine_kind=engine_kind)
        if max_nodes <= 0:
            raise ValueError(f"max_nodes must be positive, got {max_nodes}")
        self._max_nodes = max_nodes

    def _solve(
        self,
        instance: SESInstance,
        k: int,
        engine: ScoreEngine,
        checker: FeasibilityChecker,
        stats: SolverStats,
        *,
        plane=None,
        locks=None,
    ) -> None:
        # Optimistic per-event ceiling: the best score over empty intervals.
        # Adding events only shrinks scores (concavity of M/(K+M)), so the
        # empty-schedule score upper-bounds the gain in any schedule.
        # With locks, forbidden cells are -inf in `base` (they can never
        # contribute) and pinned columns drop out of the search entirely:
        # pins are committed up front as fixed branch constraints and the
        # DFS explores only the free events.
        base = self._base_scores(instance, engine, stats, plane, locks)
        optimistic = base.max(axis=0, initial=0.0)

        n = instance.n_events
        if locks is not None:
            self._apply_pins(locks, engine, checker, stats)
            pinned = locks.pinned_events
            free = [event for event in range(n) if event not in pinned]
        else:
            free = list(range(n))
        n_free = len(free)
        placed_at_root = len(engine.schedule)
        utility_at_root = engine.total_utility() if locks is not None else 0.0
        optimistic_free = optimistic[free]

        # suffix_best[i][j] = sum of the j largest optimistic scores among
        # free events i..n_free-1; used for the bound at depth i.
        suffix_best: list[np.ndarray] = [
            np.zeros(k + 1) for _ in range(n_free + 1)
        ]
        for i in range(n_free - 1, -1, -1):
            tail = np.sort(optimistic_free[i:])[::-1]
            sums = np.concatenate(([0.0], np.cumsum(tail[:k])))
            padded = np.full(k + 1, sums[-1])
            padded[: len(sums)] = sums
            suffix_best[i] = padded

        best = _Incumbent()

        def recurse(position: int, placed: int, utility: float) -> None:
            stats.nodes_explored += 1
            if stats.nodes_explored > self._max_nodes:
                raise SearchBudgetExceeded(
                    f"exhaustive search exceeded {self._max_nodes} nodes; "
                    f"this solver is intended for tiny instances"
                )
            # Incumbents are compared lexicographically by (size, utility):
            # when a k-schedule exists the size-k leaves dominate all
            # prefixes, so this is exactly max-utility-among-k-schedules;
            # when none exists, the answer degrades to "largest feasible
            # schedule, best utility among those" — mirroring GRD's
            # fill-as-much-as-possible contract.
            if placed > best.size or (
                placed == best.size and utility > best.utility + 1e-12
            ):
                best.size = placed
                best.utility = utility
                best.mapping = engine.schedule.as_mapping()
            if placed == k or position >= n_free:
                return

            # size-aware pruning: a branch can still place at most
            # (n_free - position) more events, capped by the budget.
            reachable_size = min(k, placed + (n_free - position))
            if reachable_size < best.size:
                return
            head_count = min(k - placed, n_free - position)
            optimistic = utility + suffix_best[position][head_count]
            if reachable_size == best.size and optimistic <= best.utility:
                return

            event = free[position]

            # branch 1: skip this event
            recurse(position + 1, placed, utility)

            # branch 2: place it at each feasible interval
            for interval in range(instance.n_intervals):
                if locks is not None and locks.is_forbidden(interval, event):
                    continue  # locked out: never a branch
                assignment = Assignment(event=event, interval=interval)
                if not checker.is_valid(assignment):
                    continue
                gain = engine.score(event, interval)
                stats.score_updates += 1
                checker.apply(assignment)
                engine.assign(event, interval)
                recurse(position + 1, placed + 1, utility + gain)
                engine.unassign(event)
                checker.unapply(assignment)

        recurse(0, placed_at_root, utility_at_root)

        # Materialize the incumbent into the engine-backed schedule.
        engine.reset()
        rebuild_checker = FeasibilityChecker(instance)
        if best.mapping:
            for event, interval in sorted(best.mapping.items()):
                rebuild_checker.apply(Assignment(event=event, interval=interval))
                engine.assign(event, interval)

    # `solve` from the base class recomputes the utility from engine state,
    # so the incumbent's incremental utility is double-checked for free.


class _Incumbent:
    """Mutable best-so-far holder for the DFS closure.

    Ordered lexicographically by (size, utility): see the recursion's
    incumbent comment for why size ranks first.
    """

    __slots__ = ("size", "utility", "mapping")

    def __init__(self) -> None:
        self.size = -1
        self.utility = -np.inf
        self.mapping: dict[int, int] | None = None


def optimal_utility(
    instance: SESInstance, k: int, max_nodes: int = 2_000_000
) -> float:
    """Convenience: the exact optimum ``Omega(S*_k)`` for tiny instances."""
    solver = ExhaustiveScheduler(max_nodes=max_nodes)
    return solver.solve(instance, k).utility
