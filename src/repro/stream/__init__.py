"""``repro.stream`` — the streaming workload subsystem.

The paper solves SES once; a deployed organizer faces a *stream*: new
candidate events surface, acts cancel, rival venues announce shows,
audience taste drifts, budgets grow.  This package makes that scenario a
first-class workload:

* :mod:`repro.stream.trace` — frozen, timestamped change ops
  (:class:`ArriveCandidate`, :class:`CancelEvent`, :class:`AnnounceRival`,
  :class:`DriftInterest`, :class:`RaiseBudget`) bundled into replayable
  :class:`Trace` objects with deterministic JSONL serialization;
* :mod:`repro.stream.policies` — pluggable maintenance policies
  (``incremental``, ``periodic-rebuild``, ``hybrid``) deciding how much
  re-optimization each change is worth;
* :mod:`repro.stream.driver` — :class:`StreamDriver`, the replay loop
  recording per-op latency, the utility trajectory and oracle regret.

Traces are generated from experiment configs by
:class:`repro.workloads.traces.TraceGenerator`, replayed here, and
benchmarked policy-against-policy by
``benchmarks/bench_stream_policies.py``.  The serving facade exposes the
loop as :meth:`repro.api.ScheduleSession.stream`, and the CLI as
``ses-repro stream``.
"""

from repro.stream.driver import OpRecord, StreamDriver, StreamResult
from repro.stream.policies import (
    HybridPolicy,
    IncrementalPolicy,
    MaintenancePolicy,
    PeriodicRebuildPolicy,
    POLICY_NAMES,
    make_policy,
)
from repro.stream.trace import (
    AnnounceRival,
    ArriveCandidate,
    CancelEvent,
    ChangeOp,
    DriftInterest,
    RaiseBudget,
    Trace,
    TraceError,
    entries_from_column,
)

__all__ = [
    "AnnounceRival",
    "ArriveCandidate",
    "CancelEvent",
    "ChangeOp",
    "DriftInterest",
    "HybridPolicy",
    "IncrementalPolicy",
    "MaintenancePolicy",
    "OpRecord",
    "POLICY_NAMES",
    "PeriodicRebuildPolicy",
    "RaiseBudget",
    "StreamDriver",
    "StreamResult",
    "Trace",
    "TraceError",
    "entries_from_column",
    "make_policy",
]
