"""Maintenance policies: how a live schedule absorbs a change stream.

A policy owns an :class:`~repro.algorithms.incremental.IncrementalScheduler`
and decides, per change op, how much re-optimization to pay for:

* :class:`IncrementalPolicy` (``"incremental"``) — full greedy upkeep per
  op (displacement, refill, relocation), never a global rebuild.  The
  cheap path: per-op cost is a couple of score-row refreshes.
* :class:`PeriodicRebuildPolicy` (``"periodic-rebuild"``) — repair-only
  between rebuilds (ops apply structurally with ``maintain=False``), then
  a full batch re-solve through the solver registry every
  ``rebuild_every`` ops and once more at end of stream.  With
  ``rebuild_every=1`` this is the classical "re-solve on every change"
  baseline the benchmark compares against; its end-of-stream schedule is
  *exactly* a one-shot registry solve on the final instance state (the
  parity property the streaming test suite enforces).  Re-solves run
  warm: the solver is fed the scheduler's
  :meth:`~repro.algorithms.incremental.IncrementalScheduler.base_plane`
  — an empty-schedule score plane kept current by the delta stream — and
  solves directly over the live view, so each rebuild re-scores only the
  rows dirtied since the previous one and never freezes a snapshot.
* :class:`HybridPolicy` (``"hybrid"``) — incremental upkeep per op while
  accumulating *drift pressure* (the L1 interest mass each op touched);
  when the accumulated pressure crosses ``drift_threshold`` the schedule
  is rebuilt from scratch, reclaiming the global structure that long
  greedy histories erode.  The policy materializes the scheduler's base
  plane at bind time, so those rebuilds warm-start from cached
  empty-schedule scores instead of re-sweeping every cell.

Policies are single-use: :meth:`MaintenancePolicy.bind` attaches one to an
instance, and :class:`~repro.stream.driver.StreamDriver` drives the
``apply``/``finish`` lifecycle.  All three resolve their solvers and
engines through :class:`~repro.core.engine.EngineSpec` and the solver
registry, so the whole subsystem stays sparse-friendly end to end.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any

import numpy as np

from repro.algorithms.incremental import IncrementalScheduler
from repro.algorithms.registry import solver_registry
from repro.core.engine import EngineSpec
from repro.core.instance import SESInstance
from repro.core.schedule import Schedule
from repro.interactive.locks import LockSet

from repro.stream.trace import (
    AnnounceRival,
    ArriveCandidate,
    CancelEvent,
    ChangeOp,
    DriftInterest,
)

__all__ = [
    "MaintenancePolicy",
    "IncrementalPolicy",
    "PeriodicRebuildPolicy",
    "HybridPolicy",
    "POLICY_NAMES",
    "make_policy",
]


class MaintenancePolicy(ABC):
    """One strategy for keeping a schedule alive under a change stream."""

    #: Registry name; subclasses override.
    name: str = "abstract"

    def __init__(self) -> None:
        self._live: IncrementalScheduler | None = None
        self._rebuilds = 0

    # -- lifecycle ------------------------------------------------------
    def bind(
        self,
        instance: SESInstance,
        k: int,
        engine: EngineSpec | str | None = None,
        locks: LockSet | None = None,
    ) -> None:
        """Attach to an instance: build the maintained scheduler.

        ``locks`` threads organizer pin/forbid constraints into the
        maintained scheduler; every repair and rebuild honors them, and
        pins survive event-cancel renumbering for the stream's lifetime.
        """
        if self._live is not None:
            raise RuntimeError(
                f"policy {self.name!r} is already bound; policies are "
                f"single-use — construct a fresh one per replay"
            )
        self._live = IncrementalScheduler(
            instance, k, engine=EngineSpec.coerce(engine), locks=locks
        )

    @abstractmethod
    def apply(self, op: ChangeOp) -> None:
        """Absorb one change op (structural change + policy-owned upkeep)."""

    def finish(self) -> None:
        """End-of-stream hook (periodic policies flush here)."""

    # -- state ----------------------------------------------------------
    @property
    def bound(self) -> bool:
        """Whether :meth:`bind` has attached this policy to an instance."""
        return self._live is not None

    @property
    def scheduler(self) -> IncrementalScheduler:
        if self._live is None:
            raise RuntimeError(f"policy {self.name!r} is not bound yet")
        return self._live

    @property
    def rebuilds(self) -> int:
        """Number of full re-solves this policy has paid for."""
        return self._rebuilds

    @property
    def schedule(self) -> Schedule:
        return self.scheduler.schedule

    def utility(self) -> float:
        return self.scheduler.utility()

    # -- durability ------------------------------------------------------
    def state_dict(self) -> dict[str, Any]:
        """JSON-ready internal counters a checkpoint must carry.

        Everything a policy's :meth:`apply` decisions depend on *besides*
        the scheduler state itself belongs here; recovery restores it via
        :meth:`load_state` right after re-binding, so a resumed replay is
        bit-identical to an uninterrupted one.  Subclasses extend the
        dict (and CONTRIBUTING requires new policies to do the same for
        any new mutable state).
        """
        return {"rebuilds": self._rebuilds}

    def load_state(self, state: dict[str, Any]) -> None:
        """Restore :meth:`state_dict` output onto a freshly bound policy."""
        self._rebuilds = int(state.get("rebuilds", 0))

    def describe(self) -> str:
        return self.name


class IncrementalPolicy(MaintenancePolicy):
    """Greedy upkeep on every op; never a global rebuild."""

    name = "incremental"

    def apply(self, op: ChangeOp) -> None:
        op.apply(self.scheduler, maintain=True)


class PeriodicRebuildPolicy(MaintenancePolicy):
    """Repair-only between full batch re-solves every ``rebuild_every`` ops.

    Parameters
    ----------
    rebuild_every:
        Ops between re-solves; ``1`` (the default) re-solves after every
        change — the classical baseline.
    solver:
        Registry name of the batch solver used for re-solves.
    warm:
        When True (the default) re-solves run through the scheduler's
        warm base plane over the live view.  ``warm=False`` keeps the
        legacy cold path — freeze an immutable snapshot, build a fresh
        engine, sweep every score — and exists as the measured baseline
        for the warm path's speedup (``bench_stream_policies.py``) and
        as an escape hatch; final schedules are identical either way.
    """

    name = "periodic-rebuild"

    def __init__(
        self,
        rebuild_every: int = 1,
        solver: str = "grd",
        warm: bool = True,
    ) -> None:
        super().__init__()
        if rebuild_every <= 0:
            raise ValueError(
                f"rebuild_every must be positive, got {rebuild_every}"
            )
        info = solver_registry.get(solver)  # fail fast on unknown names
        if not info.one_shot:
            raise ValueError(
                f"periodic-rebuild needs a batch solver, got {solver!r} "
                f"({info.kind})"
            )
        self._rebuild_every = rebuild_every
        self._solver = solver
        self._warm = warm
        self._ops_since_rebuild = 0

    def bind(
        self,
        instance: SESInstance,
        k: int,
        engine: EngineSpec | str | None = None,
        locks: LockSet | None = None,
    ) -> None:
        super().bind(instance, k, engine, locks)
        if self._solver != "grd":
            # the scheduler's initial fill IS a GRD run; only a non-GRD
            # solver needs a bind-time re-solve to align the start
            self._resolve()

    def apply(self, op: ChangeOp) -> None:
        op.apply(self.scheduler, maintain=False)
        self._ops_since_rebuild += 1
        if self._ops_since_rebuild >= self._rebuild_every:
            self._resolve()

    def finish(self) -> None:
        if self._ops_since_rebuild:
            self._resolve()

    def state_dict(self) -> dict[str, Any]:
        state = super().state_dict()
        state["ops_since_rebuild"] = self._ops_since_rebuild
        return state

    def load_state(self, state: dict[str, Any]) -> None:
        super().load_state(state)
        self._ops_since_rebuild = int(state.get("ops_since_rebuild", 0))

    def _resolve(self) -> None:
        live = self.scheduler
        solver = solver_registry.create(
            self._solver, engine=live.engine_spec
        )
        if self._warm:
            # warm batch re-solve straight over the live view: the base
            # plane's cached initial scores make it O(dirty rows), and
            # no O(instance) snapshot is ever frozen
            result = solver.solve(
                live.live, live.k, plane=live.base_plane(), locks=live.locks
            )
        else:
            # legacy baseline: freeze a snapshot, cold-fill every score
            result = solver.solve(live.instance, live.k, locks=live.locks)  # ses-lint: disable=freeze-ban
        live.adopt(result.schedule)
        self._rebuilds += 1
        self._ops_since_rebuild = 0

    def describe(self) -> str:
        mode = "" if self._warm else ", cold"
        return f"{self.name}(every={self._rebuild_every}, {self._solver}{mode})"


class HybridPolicy(MaintenancePolicy):
    """Incremental upkeep plus a full rebuild when drift pressure piles up.

    Parameters
    ----------
    drift_threshold:
        Accumulated L1 interest mass (summed over op payloads and drift
        deltas) that triggers a rebuild.  ``None`` picks a scale-free
        default at bind time: 10% of the instance's total candidate
        interest mass.
    """

    name = "hybrid"

    #: Fraction of total candidate interest mass used when no explicit
    #: threshold is configured.
    DEFAULT_THRESHOLD_FRACTION = 0.10

    def __init__(self, drift_threshold: float | None = None) -> None:
        super().__init__()
        if drift_threshold is not None and drift_threshold <= 0:
            raise ValueError(
                f"drift_threshold must be positive, got {drift_threshold}"
            )
        self._threshold = drift_threshold
        self._pressure = 0.0

    def bind(
        self,
        instance: SESInstance,
        k: int,
        engine: EngineSpec | str | None = None,
        locks: LockSet | None = None,
    ) -> None:
        super().bind(instance, k, engine, locks)
        # materializing the base plane now makes every pressure-triggered
        # rebuild() a warm refill (seeded from cached base scores)
        self.scheduler.base_plane()
        if self._threshold is None:
            interest = instance.interest
            total_mass = (
                interest.mean_positive_interest() * interest.nnz_candidate()
            )
            self._threshold = max(
                1.0, self.DEFAULT_THRESHOLD_FRACTION * total_mass
            )

    @property
    def drift_threshold(self) -> float | None:
        return self._threshold

    @property
    def pressure(self) -> float:
        """Accumulated (un-flushed) drift pressure."""
        return self._pressure

    def apply(self, op: ChangeOp) -> None:
        self._pressure += self._op_pressure(op)
        op.apply(self.scheduler, maintain=True)
        if self._pressure >= self._threshold:
            # subtract exactly what this rebuild flushes rather than
            # zeroing: pressure added concurrently with the rebuild
            # (reentrant apply via instrumentation/subclass hooks) must
            # survive to count toward the next threshold crossing
            flushed = self._pressure
            self.scheduler.rebuild()
            self._rebuilds += 1
            self._pressure -= flushed

    def state_dict(self) -> dict[str, Any]:
        state = super().state_dict()
        # the threshold is resolved from the *initial* instance's interest
        # mass at bind time; recovery re-binds on a checkpointed (mutated)
        # instance, so the resolved value must travel in the checkpoint
        state["pressure"] = self._pressure
        state["drift_threshold"] = self._threshold
        return state

    def load_state(self, state: dict[str, Any]) -> None:
        super().load_state(state)
        self._pressure = float(state.get("pressure", 0.0))
        threshold = state.get("drift_threshold")
        if threshold is not None:
            self._threshold = float(threshold)

    def _op_pressure(self, op: ChangeOp) -> float:
        """L1 interest mass the op touches (computed pre-application)."""
        if isinstance(op, (ArriveCandidate, AnnounceRival)):
            return sum(value for _, value in op.interest)
        # read through the live view: snapshotting the instance per op
        # would reintroduce the O(instance) cost LiveInstance removed
        interest = self.scheduler.live.interest
        if isinstance(op, CancelEvent):
            _, values = interest.event_column_entries(op.event)
            return float(np.abs(values).sum())
        if isinstance(op, DriftInterest):
            old = dict(
                zip(*(arr.tolist() for arr in interest.event_column_entries(op.event)))
            )
            new = dict(op.interest)
            # sorted: float accumulation order must not depend on set
            # hash order, or the pressure threshold comparison drifts
            users = sorted(set(old) | set(new))
            return float(
                sum(abs(new.get(u, 0.0) - old.get(u, 0.0)) for u in users)
            )
        return 0.0  # budget raises carry no interest mass

    def describe(self) -> str:
        threshold = (
            f"{self._threshold:.3g}" if self._threshold is not None else "auto"
        )
        return f"{self.name}(threshold={threshold})"


#: Policy names accepted by :func:`make_policy` and the CLI, in the order
#: the benchmark reports them.
POLICY_NAMES: tuple[str, ...] = ("incremental", "periodic-rebuild", "hybrid")

_POLICIES: dict[str, type[MaintenancePolicy]] = {
    IncrementalPolicy.name: IncrementalPolicy,
    PeriodicRebuildPolicy.name: PeriodicRebuildPolicy,
    HybridPolicy.name: HybridPolicy,
}


def make_policy(name: str, **params: Any) -> MaintenancePolicy:
    """Construct a maintenance policy by registry name."""
    cls = _POLICIES.get(name)
    if cls is None:
        raise ValueError(
            f"unknown maintenance policy {name!r}; choose from {POLICY_NAMES}"
        )
    return cls(**params)
