"""The stream driver: replay a change trace against a maintenance policy.

:class:`StreamDriver` is the streaming subsystem's serving loop — the
online analogue of :class:`repro.api.ScheduleSession`.  It binds a
:class:`~repro.stream.policies.MaintenancePolicy` to an instance, feeds
the trace op by op, and records what a production operator would watch:

* **per-op latency** — wall-clock cost of absorbing each change;
* **utility trajectory** — expected attendance after every op;
* **regret vs. an oracle** — the gap to a fresh batch re-solve on the
  same live state, sampled every ``oracle_every`` ops (the oracle run is
  itself a full solve, so it is opt-in and never counted into latency).
  Oracle solves run *warm* through the scheduler's
  :meth:`~repro.algorithms.incremental.IncrementalScheduler.base_plane`:
  each sample re-scores only rows dirtied since the last base-plane
  consumer instead of paying a cold O(|T| * |E|) fill plus an
  O(instance) snapshot freeze per sample.

Replay is deterministic: the same trace and policy produce an identical
op log, utility trajectory and final schedule on every run (the
streaming test suite asserts it on both interest backends).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.algorithms.registry import solver_registry
from repro.core.engine import EngineSpec
from repro.core.instance import SESInstance
from repro.interactive.locks import LockSet

from repro.stream.policies import MaintenancePolicy, make_policy
from repro.stream.trace import Trace

if TYPE_CHECKING:
    from repro.resilience.config import Durability

__all__ = ["OpRecord", "StreamResult", "StreamDriver"]


@dataclass(frozen=True)
class OpRecord:
    """What the driver observed while absorbing one change op."""

    index: int
    label: str
    latency_seconds: float
    utility: float
    schedule_size: int
    #: ``oracle_utility - utility`` when an oracle re-solve was sampled
    #: at this op, else ``None``.
    regret: float | None = None


@dataclass(frozen=True)
class StreamResult:
    """The outcome of replaying one trace under one policy."""

    policy: str
    engine: EngineSpec
    records: tuple[OpRecord, ...]
    final_utility: float
    final_schedule: dict[int, int]
    final_k: int
    rebuilds: int
    finish_seconds: float
    total_seconds: float
    #: O(instance) snapshot materializations the replay paid for
    #: (:attr:`repro.core.live.LiveInstance.freezes`): 0 on the pure
    #: incremental fast path — and, now that batch re-solves and oracle
    #: samples run warm over the live view, 0 on every built-in policy.
    freezes: int = 0
    #: :meth:`repro.core.scoreplane.ScorePlane.stats` of the scheduler's
    #: base plane (``None`` when no batch consumer materialized one).
    #: ``cells_filled`` is the one-off cold fill; ``cells_refreshed``
    #: counts every warm re-score across all rebuilds/oracle samples —
    #: the benchmark's proof that a warm re-solve does strictly less
    #: scoring work than a cold fill.
    base_plane_stats: dict[str, int] | None = None

    # -- trajectory accessors -------------------------------------------
    @property
    def op_log(self) -> tuple[str, ...]:
        """The applied op labels, in order (the determinism fingerprint)."""
        return tuple(record.label for record in self.records)

    @property
    def utilities(self) -> tuple[float, ...]:
        """Utility after each op (the trajectory)."""
        return tuple(record.utility for record in self.records)

    @property
    def latencies(self) -> tuple[float, ...]:
        return tuple(record.latency_seconds for record in self.records)

    @property
    def regrets(self) -> tuple[float, ...]:
        """The sampled oracle regrets, in sampling order."""
        return tuple(
            record.regret for record in self.records if record.regret is not None
        )

    # -- latency statistics ---------------------------------------------
    def mean_latency(self) -> float:
        if not self.records:
            return 0.0
        return sum(self.latencies) / len(self.records)

    def max_latency(self) -> float:
        return max(self.latencies, default=0.0)

    def percentile_latency(self, q: float) -> float:
        """Latency at quantile ``q`` in [0, 1] (nearest-rank)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must lie in [0, 1], got {q}")
        if not self.records:
            return 0.0
        ordered = sorted(self.latencies)
        rank = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
        return ordered[rank]

    def summary(self) -> str:
        regrets = self.regrets
        regret = (
            f" max-regret={max(regrets):.4f}" if regrets else ""
        )
        return (
            f"{self.policy}: {len(self.records)} ops, "
            f"final-utility={self.final_utility:.4f} k={self.final_k} "
            f"mean-op={self.mean_latency() * 1e3:.2f}ms "
            f"p95-op={self.percentile_latency(0.95) * 1e3:.2f}ms "
            f"rebuilds={self.rebuilds}{regret}"
        )

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready record (benchmark output, experiment logs)."""
        return {
            "policy": self.policy,
            "engine": self.engine.kind,
            "shards": self.engine.shards,
            "workers": self.engine.workers,
            "ops": len(self.records),
            "op_log": list(self.op_log),
            "utilities": list(self.utilities),
            "latencies_ms": [lat * 1e3 for lat in self.latencies],
            "regrets": list(self.regrets),
            "final_utility": self.final_utility,
            "final_schedule": {
                str(event): interval
                for event, interval in sorted(self.final_schedule.items())
            },
            "final_k": self.final_k,
            "rebuilds": self.rebuilds,
            "freezes": self.freezes,
            "base_plane": self.base_plane_stats,
            "total_seconds": self.total_seconds,
        }


class StreamDriver:
    """Replays change traces against one instance under one policy.

    Parameters
    ----------
    instance:
        The starting instance (the trace's ``n_users`` must match).
    k:
        Initial schedule budget; ``None`` takes the trace's ``initial_k``
        at :meth:`run` time.
    policy:
        A policy name (``"incremental"``, ``"periodic-rebuild"``,
        ``"hybrid"``) or a ready, *unbound* policy object.
    engine:
        :class:`EngineSpec` (or kind string) for every engine the policy
        builds; pick the sparse spec for Meetup-scale replays.
    oracle_every:
        Sample regret against a fresh batch re-solve every this many ops
        (``None`` disables — the default, as each sample costs a solve).
    oracle_solver:
        Registry name of the batch solver used as the oracle.  Defaults
        to ``"grd-heap"``: the oracle only consumes the re-solve's
        *utility* (the schedule is discarded), heap-GRD's utility is
        exactly list-GRD's, and its lazy revalidation makes each warm
        sample several times cheaper than a full GRD sweep.
    locks:
        Organizer pin/forbid constraints threaded into the policy's
        maintained scheduler at bind time; every repair, rebuild and
        oracle sample honors them across the whole replay.
    durability:
        A :class:`repro.resilience.Durability` config makes the replay
        crash-safe: every applied op is journaled (op + observation
        record) and the live state is checkpointed on the configured
        cadence.  :func:`repro.resilience.recover` rebuilds such a
        session from its directory after a crash.  Requires a policy
        *name* (recovery reconstructs the policy from the journal).
    """

    def __init__(
        self,
        instance: SESInstance,
        k: int | None = None,
        policy: MaintenancePolicy | str = "incremental",
        engine: EngineSpec | str | None = None,
        *,
        oracle_every: int | None = None,
        oracle_solver: str = "grd-heap",
        locks: LockSet | None = None,
        durability: "Durability | None" = None,
        **policy_params: Any,
    ) -> None:
        if isinstance(policy, str):
            self._policy_name: str | None = policy
            self._policy_params = dict(policy_params)
            policy = make_policy(policy, **policy_params)
        else:
            if policy_params:
                raise TypeError(
                    "policy parameters are only accepted together with a "
                    "policy name, not a ready policy object"
                )
            self._policy_name = None
            self._policy_params = {}
        if durability is not None and self._policy_name is None:
            raise TypeError(
                "durable replays need a policy name, not a ready policy "
                "object — recovery reconstructs the policy from the journal"
            )
        if oracle_every is not None and oracle_every <= 0:
            raise ValueError(
                f"oracle_every must be positive, got {oracle_every}"
            )
        solver_registry.get(oracle_solver)  # fail fast on unknown names
        self._instance = instance
        self._k = k
        self._policy = policy
        self._engine = EngineSpec.coerce(engine)
        self._oracle_every = oracle_every
        self._oracle_solver = oracle_solver
        self._locks = LockSet.coerce(locks)
        self._durability = durability

    @property
    def policy(self) -> MaintenancePolicy:
        return self._policy

    def run(self, trace: Trace, *, stop_after: int | None = None) -> StreamResult:
        """Replay ``trace`` and return the full observation record.

        A driver constructed from a policy *name* can replay repeatedly
        (each run gets a fresh policy); one wrapping a ready policy
        object is single-use, since policies are.

        ``stop_after`` is the kill-point hook for durable replays: apply
        that many ops, then abandon the run as a process crash would —
        no ``finish()``, no final checkpoint, no journal fsync.  The
        partial result reflects the state at the kill point; recover the
        durability directory to resume.
        """
        self._validate_shape(trace)
        if stop_after is not None and stop_after < 0:
            raise ValueError(f"stop_after must be >= 0, got {stop_after}")
        if self._policy.bound:
            if self._policy_name is None:
                raise RuntimeError(
                    "this StreamDriver wraps an already-used policy object "
                    "(policies are single-use); construct the driver with a "
                    "policy name to replay more than once"
                )
            self._policy = make_policy(self._policy_name, **self._policy_params)
        k = self._k if self._k is not None else trace.initial_k
        started = time.perf_counter()
        self._policy.bind(self._instance, k, engine=self._engine, locks=self._locks)

        durable = None
        if self._durability is not None:
            from repro.resilience.stream import DurableStream

            assert self._policy_name is not None  # enforced in __init__
            durable = DurableStream.begin(
                self._durability,
                policy=self._policy,
                policy_name=self._policy_name,
                policy_params=self._policy_params,
                trace=trace,
                k=k,
                oracle_every=self._oracle_every,
                oracle_solver=self._oracle_solver,
            )

        records: list[OpRecord] = []
        interrupted = False
        for index, op in enumerate(trace):
            if stop_after is not None and index >= stop_after:
                interrupted = True
                break
            op_started = time.perf_counter()
            self._policy.apply(op)
            latency = time.perf_counter() - op_started
            regret: float | None = None
            if (
                self._oracle_every is not None
                and (index + 1) % self._oracle_every == 0
            ):
                regret = self._oracle_regret()
            record = OpRecord(
                index=index,
                label=op.label(),
                latency_seconds=latency,
                utility=self._policy.utility(),
                schedule_size=len(self._policy.schedule),
                regret=regret,
            )
            records.append(record)
            if durable is not None:
                durable.record(op, record)

        if interrupted:
            if durable is not None:
                durable.crash()
            finish_seconds = 0.0
        else:
            finish_started = time.perf_counter()
            self._policy.finish()
            finish_seconds = time.perf_counter() - finish_started
            if durable is not None:
                durable.finish()

        live = self._policy.scheduler
        base_plane = live.materialized_base_plane
        return StreamResult(
            policy=self._policy.describe(),
            engine=self._engine,
            records=tuple(records),
            final_utility=self._policy.utility(),
            final_schedule=live.schedule.as_mapping(),
            final_k=live.k,
            rebuilds=self._policy.rebuilds,
            finish_seconds=finish_seconds,
            total_seconds=time.perf_counter() - started,
            freezes=live.live.freezes,
            base_plane_stats=(
                None if base_plane is None else base_plane.stats()
            ),
        )

    def _validate_shape(self, trace: Trace) -> None:
        """Reject traces whose recorded shape mismatches the instance."""
        instance = self._instance
        checks = (
            ("users", trace.n_users, instance.n_users),
            ("candidate events", trace.n_events, instance.n_events),
            ("intervals", trace.n_intervals, instance.n_intervals),
        )
        for what, expected, actual in checks:
            if expected is not None and expected != actual:
                raise ValueError(
                    f"trace was generated for {expected} {what} but the "
                    f"instance has {actual}"
                )

    def _oracle_regret(self) -> float:
        """Utility gap to a warm batch re-solve on the current live state."""
        live = self._policy.scheduler
        oracle = solver_registry.create(
            self._oracle_solver, engine=live.engine_spec
        ).solve(live.live, live.k, plane=live.base_plane(), locks=live.locks)
        return oracle.utility - self._policy.utility()
