"""The streaming trace model: frozen, timestamped change operations.

A *trace* is the unit of replay for the streaming subsystem: an ordered
tuple of change ops — candidate arrivals, cancellations, rival
announcements, interest drift, budget raises — each stamped with a
monotonically non-decreasing ``time``.  Ops are frozen dataclasses, so a
trace can be shared between policies, replayed repeatedly, and hashed
into experiment records without aliasing surprises.

Interest payloads are stored as sparse ``(user, value)`` entry tuples,
never dense vectors: a Meetup-scale arrival touches a few hundred of
42,444 users, and keeping ops sparse is what lets traces serialize
compactly and replay against the CSC interest backend without ever
materializing an ``O(|U|)`` payload per op (the replay driver expands a
column only at apply time).

Serialization is deterministic JSONL: one canonical JSON object per line
(sorted keys, no whitespace), preceded by a header line carrying the
trace's shape metadata.  Two equal traces always serialize to identical
bytes — the replay-determinism suite relies on it.

Event indices in ops refer to the *live* instance at apply time:
:class:`CancelEvent` renumbers subsequent events exactly like
:meth:`~repro.algorithms.incremental.IncrementalScheduler.cancel_event`
does, and :class:`~repro.workloads.traces.TraceGenerator` tracks that
index space while sampling, so generated traces are always applicable.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, fields, replace
from pathlib import Path
from typing import TYPE_CHECKING, Any, ClassVar

import numpy as np

from repro.core.errors import TraceError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.algorithms.incremental import IncrementalScheduler

__all__ = [
    "ChangeOp",
    "ArriveCandidate",
    "CancelEvent",
    "AnnounceRival",
    "DriftInterest",
    "RaiseBudget",
    "Trace",
    "TraceError",
    "entries_from_column",
]

#: Serialization format tag written into every trace header.
TRACE_FORMAT = "ses-trace/1"

#: ``(user, value)`` interest entries, sorted by user, values in (0, 1].
Entries = tuple[tuple[int, float], ...]


def entries_from_column(column: np.ndarray) -> Entries:
    """Canonical sparse entries of a dense interest column (zeros dropped)."""
    column = np.asarray(column, dtype=float)
    rows = np.flatnonzero(column)
    return tuple((int(u), float(column[u])) for u in rows)


def _normalize_entries(entries: Iterable[tuple[int, float]]) -> Entries:
    """Sort by user, reject duplicates and out-of-range values."""
    pairs = tuple(sorted((int(u), float(v)) for u, v in entries))
    seen: set[int] = set()
    for user, value in pairs:
        if user < 0:
            raise ValueError(f"interest entry user must be non-negative, got {user}")
        if user in seen:
            raise ValueError(f"duplicate interest entry for user {user}")
        if not 0.0 < value <= 1.0:
            raise ValueError(
                f"interest entry values must lie in (0, 1], got {value} "
                f"for user {user}"
            )
        seen.add(user)
    return pairs


def _column_from_entries(entries: Entries, n_users: int) -> np.ndarray:
    column = np.zeros(n_users)
    for user, value in entries:
        if user >= n_users:
            raise ValueError(
                f"interest entry user {user} out of range for {n_users} users"
            )
        column[user] = value
    return column


@dataclass(frozen=True)
class ChangeOp:
    """Base of all streaming change operations (timestamped, frozen)."""

    time: float

    #: Short serialization / op-log tag; subclasses override.
    kind: ClassVar[str] = "op"

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"op time must be non-negative, got {self.time}")

    # -- replay ---------------------------------------------------------
    def apply(self, live: "IncrementalScheduler", *, maintain: bool = True) -> None:
        """Apply this op to a live scheduler (structural + optional upkeep)."""
        raise NotImplementedError

    # -- serialization --------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {"op": self.kind}
        for spec in fields(self):
            value = getattr(self, spec.name)
            if isinstance(value, tuple):
                value = [list(pair) for pair in value]
            payload[spec.name] = value
        return payload

    @staticmethod
    def from_dict(payload: dict[str, Any]) -> "ChangeOp":
        data = dict(payload)
        kind = data.pop("op", None)
        cls = _OP_KINDS.get(kind)
        if cls is None:
            raise ValueError(
                f"unknown change-op kind {kind!r}; "
                f"choose from {sorted(_OP_KINDS)}"
            )
        if "interest" in data:
            data["interest"] = tuple(
                (int(u), float(v)) for u, v in data["interest"]
            )
        return cls(**data)

    def label(self) -> str:
        """Compact tag for op logs, e.g. ``"arrive"`` / ``"cancel:3"``."""
        return self.kind


@dataclass(frozen=True)
class ArriveCandidate(ChangeOp):
    """A new candidate event becomes available."""

    location: int = 0
    required_resources: float = 0.0
    interest: Entries = ()
    name: str = ""

    kind: ClassVar[str] = "arrive"

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(self, "interest", _normalize_entries(self.interest))

    def apply(
        self, live: "IncrementalScheduler", *, maintain: bool = True
    ) -> None:
        live.add_candidate_event(
            location=self.location,
            required_resources=self.required_resources,
            interest_column=_column_from_entries(
                self.interest, live.live.n_users
            ),
            name=self.name,
            maintain=maintain,
        )


@dataclass(frozen=True)
class CancelEvent(ChangeOp):
    """A candidate event (scheduled or not) disappears."""

    event: int = 0

    kind: ClassVar[str] = "cancel"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.event < 0:
            raise ValueError(f"event index must be non-negative, got {self.event}")

    def apply(
        self, live: "IncrementalScheduler", *, maintain: bool = True
    ) -> None:
        live.cancel_event(self.event, maintain=maintain)

    def label(self) -> str:
        return f"{self.kind}:{self.event}"


@dataclass(frozen=True)
class AnnounceRival(ChangeOp):
    """A third-party show is announced at one interval."""

    interval: int = 0
    interest: Entries = ()
    name: str = ""

    kind: ClassVar[str] = "rival"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.interval < 0:
            raise ValueError(
                f"interval index must be non-negative, got {self.interval}"
            )
        object.__setattr__(self, "interest", _normalize_entries(self.interest))

    def apply(
        self, live: "IncrementalScheduler", *, maintain: bool = True
    ) -> None:
        live.add_competing_event(
            interval=self.interval,
            interest_column=_column_from_entries(
                self.interest, live.live.n_users
            ),
            name=self.name,
            maintain=maintain,
        )

    def label(self) -> str:
        return f"{self.kind}:t{self.interval}"


@dataclass(frozen=True)
class DriftInterest(ChangeOp):
    """One event's audience interest drifts to a new column."""

    event: int = 0
    interest: Entries = ()

    kind: ClassVar[str] = "drift"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.event < 0:
            raise ValueError(f"event index must be non-negative, got {self.event}")
        object.__setattr__(self, "interest", _normalize_entries(self.interest))

    def apply(
        self, live: "IncrementalScheduler", *, maintain: bool = True
    ) -> None:
        live.update_event_interest(
            self.event,
            _column_from_entries(self.interest, live.live.n_users),
            maintain=maintain,
        )

    def label(self) -> str:
        return f"{self.kind}:{self.event}"


@dataclass(frozen=True)
class RaiseBudget(ChangeOp):
    """The organizer's budget ``k`` grows."""

    new_k: int = 1

    kind: ClassVar[str] = "budget"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.new_k <= 0:
            raise ValueError(f"new_k must be positive, got {self.new_k}")

    def apply(
        self, live: "IncrementalScheduler", *, maintain: bool = True
    ) -> None:
        live.raise_budget(self.new_k, maintain=maintain)

    def label(self) -> str:
        return f"{self.kind}:{self.new_k}"


_OP_KINDS: dict[str, type[ChangeOp]] = {
    cls.kind: cls
    for cls in (
        ArriveCandidate,
        CancelEvent,
        AnnounceRival,
        DriftInterest,
        RaiseBudget,
    )
}


class _LiveIndexMap:
    """Order-statistics map over a growing pool of live entity slots.

    :meth:`Trace.compact`'s live-index simulation needs three queries —
    bring a slot alive, retire one, and translate between a slot and its
    current *live index* (its rank among alive slots) — each formerly a
    ``list.index()``/``list.pop()`` walk, O(n) per cancel and quadratic
    over churn-heavy traces.  A Fenwick tree over slot-alive flags
    answers all three in O(log n); slots are handed out in creation
    order, so rank-by-slot equals position in the old list simulation.
    """

    __slots__ = ("_tree", "_capacity")

    def __init__(self, alive: int, capacity: int) -> None:
        self._capacity = capacity
        self._tree = [0] * (capacity + 1)
        for slot in range(alive):
            self.add(slot)

    def add(self, slot: int) -> None:
        """Mark ``slot`` alive."""
        index = slot + 1
        while index <= self._capacity:
            self._tree[index] += 1
            index += index & -index

    def remove(self, slot: int) -> None:
        """Retire an alive ``slot``."""
        index = slot + 1
        while index <= self._capacity:
            self._tree[index] -= 1
            index += index & -index

    def rank(self, slot: int) -> int:
        """Live index of an alive ``slot``: alive slots strictly before it."""
        total = 0
        index = slot  # prefix sum over tree positions 1..slot = slots < slot
        while index > 0:
            total += self._tree[index]
            index -= index & -index
        return total

    def select(self, live_index: int) -> int:
        """The slot currently at ``live_index`` (inverse of :meth:`rank`)."""
        position = 0
        remaining = live_index + 1
        step = 1 << self._capacity.bit_length()
        while step:
            probe = position + step
            if probe <= self._capacity and self._tree[probe] < remaining:
                position = probe
                remaining -= self._tree[probe]
            step >>= 1
        return position  # tree position -> 0-indexed slot


@dataclass(frozen=True)
class Trace:
    """An ordered, replayable stream of change ops plus shape metadata.

    ``n_users`` and ``initial_k`` pin the instance shape the trace was
    generated against — and, when known, ``n_events`` / ``n_intervals``
    pin the starting entity counts the ops' indices assume.  The replay
    driver validates whatever is present, so a trace can never be
    silently applied to a mismatched instance.
    """

    ops: tuple[ChangeOp, ...]
    n_users: int
    initial_k: int
    #: Candidate-event count at the start of the stream (``None``: unknown).
    n_events: int | None = None
    #: Interval count the ops' interval indices assume (``None``: unknown).
    n_intervals: int | None = None
    seed: int | None = None
    label: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "ops", tuple(self.ops))
        if self.n_users <= 0:
            raise ValueError(f"n_users must be positive, got {self.n_users}")
        if self.initial_k < 0:
            raise ValueError(
                f"initial_k must be non-negative, got {self.initial_k}"
            )
        if self.n_events is not None and self.n_events <= 0:
            raise ValueError(f"n_events must be positive, got {self.n_events}")
        if self.n_intervals is not None and self.n_intervals <= 0:
            raise ValueError(
                f"n_intervals must be positive, got {self.n_intervals}"
            )
        previous = 0.0
        for op in self.ops:
            if op.time < previous:
                raise ValueError(
                    f"op times must be non-decreasing; {op.time} follows "
                    f"{previous}"
                )
            previous = op.time
        self._validate_replayability()

    def _validate_replayability(self) -> None:
        """Simulate the live index space and reject unreplayable ops.

        Event indices in ops refer to the *live* instance at apply time
        (cancellations renumber), so a trace is only replayable if every
        referenced index exists at its op's position.  When ``n_events``
        is known, this walks the stream tracking the live candidate pool
        — exactly like the incremental scheduler will — and raises
        :class:`~repro.core.errors.TraceError` naming the offending op
        index for:

        * a :class:`CancelEvent` / :class:`DriftInterest` of an event id
          that is not live at that point;
        * an :class:`ArriveCandidate` duplicating the (nonempty) name of
          an event that is still live;
        * an :class:`AnnounceRival` at an out-of-range interval (when
          ``n_intervals`` is known);
        * a :class:`RaiseBudget` that would shrink the budget.

        Previously such traces were accepted silently and only exploded
        (or, worse, cancelled the wrong renumbered event) mid-replay.
        """
        if self.n_events is None:
            return
        # names of live candidates: the initial pool's names are unknown
        # to the trace, so they participate as anonymous placeholders;
        # the parallel set makes the duplicate probe O(1) per arrival
        live_names: list[str | None] = [None] * self.n_events
        names_in_use: set[str] = set()
        k = self.initial_k
        for index, op in enumerate(self.ops):
            if isinstance(op, ArriveCandidate):
                if op.name and op.name in names_in_use:
                    raise TraceError(
                        f"op #{index}: duplicate ArriveCandidate "
                        f"{op.name!r}; an event with that name is already "
                        f"live"
                    )
                live_names.append(op.name or None)
                if op.name:
                    names_in_use.add(op.name)
            elif isinstance(op, (CancelEvent, DriftInterest)):
                if op.event >= len(live_names):
                    raise TraceError(
                        f"op #{index}: {op.label()} references event "
                        f"{op.event}, but only {len(live_names)} candidate "
                        f"events are live at that point"
                    )
                if isinstance(op, CancelEvent):
                    cancelled = live_names.pop(op.event)
                    if cancelled is not None:
                        names_in_use.discard(cancelled)
            elif isinstance(op, AnnounceRival):
                if self.n_intervals is not None and (
                    op.interval >= self.n_intervals
                ):
                    raise TraceError(
                        f"op #{index}: {op.label()} references interval "
                        f"{op.interval}, but the trace covers "
                        f"{self.n_intervals} intervals"
                    )
            elif isinstance(op, RaiseBudget):
                if op.new_k < k:
                    raise TraceError(
                        f"op #{index}: {op.label()} would shrink the "
                        f"budget from {k} (budgets only grow; cancel "
                        f"events to shrink)"
                    )
                k = op.new_k

    def compact(self) -> "Trace":
        """Rewrite this trace into an equivalent, usually shorter one.

        Long-lived streams accumulate dead weight: candidates that
        arrive only to be cancelled later, bursts of consecutive drifts
        on the same event, staircases of budget raises.  Compaction
        applies three rewrites:

        * **cancelled arrivals are dropped** — an :class:`ArriveCandidate`
          whose event is cancelled later in the trace vanishes along
          with every op targeting it (drifts) and the cancel itself;
          live-index references in surviving ops are renumbered to the
          compacted index space (cancels of *pre-existing* events are
          kept — they change the final state);
        * **consecutive drifts coalesce** — immediately adjacent
          :class:`DriftInterest` ops on the same live event keep only
          the last column;
        * **consecutive budget raises coalesce** — immediately adjacent
          :class:`RaiseBudget` ops keep only the final budget (greedy
          fill to ``k1`` then ``k2`` is the same pick sequence as
          filling straight to ``k2``).

        The compacted trace reaches the *same final instance state*
        (entities, interest columns, rivals, budget) in the same event
        index order, so an end-of-stream batch re-solve — and hence the
        ``periodic-rebuild`` policy — lands on the identical final
        schedule; the replay-equivalence suite additionally pins the
        incremental and hybrid trajectories on seeded streams.  Requires
        ``n_events`` (the live-index simulation needs the starting pool
        size); the result is fully re-validated.
        """
        if self.n_events is None:
            raise TraceError(
                "compact() needs n_events to simulate live event indices"
            )
        # entity ids double as slots: original live pool gets 0..n-1,
        # then one sequential id per arrival — creation order, so the
        # order-statistics maps below rank entities exactly like the
        # list simulation this replaced (O(n) index/pop scans per
        # cancel made compaction quadratic on churn-heavy traces)
        total_arrivals = sum(
            1 for op in self.ops if isinstance(op, ArriveCandidate)
        )
        cancelled_arrivals: set[int] = set()
        # pass 1: find arrivals that are cancelled later in the trace
        pool = _LiveIndexMap(self.n_events, self.n_events + total_arrivals)
        probe = self.n_events
        for op in self.ops:
            if isinstance(op, ArriveCandidate):
                pool.add(probe)
                probe += 1
            elif isinstance(op, CancelEvent):
                victim = pool.select(op.event)
                pool.remove(victim)
                if victim >= self.n_events:
                    cancelled_arrivals.add(victim)
        # pass 2: emit surviving ops against the compacted live pool
        alive = _LiveIndexMap(self.n_events, self.n_events + total_arrivals)
        compact_pool = _LiveIndexMap(
            self.n_events,
            self.n_events + total_arrivals - len(cancelled_arrivals),
        )
        # surviving arrivals get fresh compact slots; original-pool
        # entities keep their own id as slot in both index spaces
        compact_slot: dict[int, int] = {}
        next_id = self.n_events
        next_compact_slot = self.n_events
        kept: list[ChangeOp] = []
        for op in self.ops:
            if isinstance(op, ArriveCandidate):
                entity, next_id = next_id, next_id + 1
                alive.add(entity)
                if entity in cancelled_arrivals:
                    continue
                compact_slot[entity] = next_compact_slot
                compact_pool.add(next_compact_slot)
                next_compact_slot += 1
                kept.append(op)
            elif isinstance(op, CancelEvent):
                entity = alive.select(op.event)
                alive.remove(entity)
                if entity in cancelled_arrivals:
                    continue
                slot = compact_slot.get(entity, entity)
                index = compact_pool.rank(slot)
                compact_pool.remove(slot)
                kept.append(replace(op, event=index))
            elif isinstance(op, DriftInterest):
                entity = alive.select(op.event)
                if entity in cancelled_arrivals:
                    continue
                index = compact_pool.rank(compact_slot.get(entity, entity))
                remapped = replace(op, event=index)
                if (
                    kept
                    and isinstance(kept[-1], DriftInterest)
                    and kept[-1].event == index
                ):
                    kept[-1] = remapped  # coalesce: the last column wins
                else:
                    kept.append(remapped)
            elif isinstance(op, RaiseBudget):
                if kept and isinstance(kept[-1], RaiseBudget):
                    kept[-1] = op  # coalesce: the final budget wins
                else:
                    kept.append(op)
            else:
                kept.append(op)
        compacted = replace(self, ops=tuple(kept))
        return compacted

    def append(self, op: ChangeOp) -> "Trace":
        """A copy with ``op`` appended, fully re-validated.

        Raises :class:`ValueError` when ``op.time`` precedes the last op
        and :class:`~repro.core.errors.TraceError` when the op is not
        replayable at its position (see :meth:`_validate_replayability`).

        Construction re-walks the whole trace (O(len)); this is a
        convenience for assembling short traces — bulk generation should
        collect ops in a list and build the :class:`Trace` once.
        """
        return replace(self, ops=(*self.ops, op))

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self) -> Iterator[ChangeOp]:
        return iter(self.ops)

    def op_counts(self) -> dict[str, int]:
        """``{kind: count}`` over the trace, sorted by kind."""
        counts: dict[str, int] = {}
        for op in self.ops:
            counts[op.kind] = counts.get(op.kind, 0) + 1
        return dict(sorted(counts.items()))

    def describe(self) -> str:
        mix = ", ".join(f"{kind}={n}" for kind, n in self.op_counts().items())
        tag = f" [{self.label}]" if self.label else ""
        return (
            f"trace{tag}: {len(self.ops)} ops over {self.n_users} users, "
            f"k0={self.initial_k} ({mix or 'empty'})"
        )

    # ------------------------------------------------------------------
    # deterministic JSONL serialization
    # ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        """The canonical JSONL encoding (header line + one line per op)."""
        header = {
            "format": TRACE_FORMAT,
            "n_users": self.n_users,
            "initial_k": self.initial_k,
            "n_events": self.n_events,
            "n_intervals": self.n_intervals,
            "seed": self.seed,
            "label": self.label,
        }
        lines = [_canonical(header)]
        lines.extend(_canonical(op.to_dict()) for op in self.ops)
        return "\n".join(lines) + "\n"

    @classmethod
    def from_jsonl(cls, text: str) -> "Trace":
        lines = [line for line in text.splitlines() if line.strip()]
        if not lines:
            raise ValueError("empty trace document (missing header line)")
        header = json.loads(lines[0])
        if header.get("format") != TRACE_FORMAT:
            raise ValueError(
                f"unsupported trace format {header.get('format')!r}; "
                f"expected {TRACE_FORMAT!r}"
            )
        ops = tuple(ChangeOp.from_dict(json.loads(line)) for line in lines[1:])
        n_events = header.get("n_events")
        n_intervals = header.get("n_intervals")
        return cls(
            ops=ops,
            n_users=int(header["n_users"]),
            initial_k=int(header["initial_k"]),
            n_events=None if n_events is None else int(n_events),
            n_intervals=None if n_intervals is None else int(n_intervals),
            seed=header.get("seed"),
            label=header.get("label", ""),
        )

    def save(self, path: str | Path) -> Path:
        """Write the trace as JSONL; returns the path."""
        path = Path(path)
        path.write_text(self.to_jsonl(), encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "Trace":
        return cls.from_jsonl(Path(path).read_text(encoding="utf-8"))


def _canonical(payload: dict[str, Any]) -> str:
    """One deterministic JSON line: sorted keys, minimal separators."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))
