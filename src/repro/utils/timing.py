"""Wall-clock measurement helpers used by the experiment harness."""

from __future__ import annotations

import time
from collections.abc import Callable
from typing import Any, TypeVar

__all__ = ["Stopwatch", "timed"]

T = TypeVar("T")


class Stopwatch:
    """Accumulating stopwatch based on :func:`time.perf_counter`.

    Supports usage as a context manager; each ``with`` block adds to the
    accumulated total so one stopwatch can measure a loop body across
    iterations.

    >>> sw = Stopwatch()
    >>> with sw:
    ...     _ = sum(range(1000))
    >>> sw.elapsed > 0
    True
    """

    def __init__(self) -> None:
        self._total = 0.0
        self._started_at: float | None = None

    @property
    def elapsed(self) -> float:
        """Total accumulated seconds (including a currently-open block)."""
        running = 0.0
        if self._started_at is not None:
            running = time.perf_counter() - self._started_at
        return self._total + running

    @property
    def running(self) -> bool:
        """Whether the stopwatch is currently inside a timed block."""
        return self._started_at is not None

    def start(self) -> None:
        if self._started_at is not None:
            raise RuntimeError("stopwatch already running")
        self._started_at = time.perf_counter()

    def stop(self) -> float:
        """Close the current block and return the total elapsed seconds."""
        if self._started_at is None:
            raise RuntimeError("stopwatch is not running")
        self._total += time.perf_counter() - self._started_at
        self._started_at = None
        return self._total

    def reset(self) -> None:
        self._total = 0.0
        self._started_at = None

    def __enter__(self) -> "Stopwatch":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def timed(func: Callable[..., T], *args: Any, **kwargs: Any) -> tuple[T, float]:
    """Call ``func`` and return ``(result, elapsed_seconds)``."""
    start = time.perf_counter()
    result = func(*args, **kwargs)
    return result, time.perf_counter() - start
