"""Input-validation guards shared across the library.

The guards raise :class:`ValueError`/:class:`IndexError` with messages that
name the offending argument, so failures surface at construction time rather
than as NaNs deep inside a solver run.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "check_fraction",
    "check_index",
    "check_non_negative",
    "check_positive",
    "check_probability_matrix",
]


def check_positive(value: float, name: str) -> float:
    """Require ``value > 0``; return it for chaining."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    return value


def check_non_negative(value: float, name: str) -> float:
    """Require ``value >= 0``; return it for chaining."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")
    return value


def check_fraction(value: float, name: str) -> float:
    """Require ``0 <= value <= 1``; return it for chaining."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value!r}")
    return value


def check_index(value: int, size: int, name: str) -> int:
    """Require ``0 <= value < size``; return it for chaining."""
    if not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an integer index, got {type(value).__name__}")
    if not 0 <= value < size:
        raise IndexError(f"{name} must lie in [0, {size}), got {value}")
    return int(value)


def check_probability_matrix(matrix: np.ndarray, name: str) -> np.ndarray:
    """Require every entry of ``matrix`` to lie in [0, 1]; return it."""
    array = np.asarray(matrix, dtype=float)
    if np.isnan(array).any():
        raise ValueError(f"{name} contains NaN entries")
    if array.size and (array.min() < 0.0 or array.max() > 1.0):
        raise ValueError(
            f"{name} entries must lie in [0, 1]; observed range "
            f"[{array.min()}, {array.max()}]"
        )
    return array
