"""Random-number-generation helpers.

Every stochastic component in the library (workload generators, the RAND
baseline, simulated annealing, the EBSN generator) accepts either an integer
seed or a ready-made :class:`numpy.random.Generator`.  Centralizing the
coercion here keeps experiments reproducible: a single integer seed at the
top of a script pins the whole pipeline.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ensure_rng", "SeedSequenceFactory"]


def ensure_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh OS-entropy generator), an ``int`` seed, or an
    existing generator (returned unchanged so that callers can share state).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


class SeedSequenceFactory:
    """Deterministically spawn independent child seeds from one root seed.

    Experiment sweeps need a *different but reproducible* seed per grid
    point; reusing one generator across points would make point ``i``'s
    randomness depend on how many draws point ``i - 1`` consumed.  This
    factory hands out independent streams keyed by spawn order.

    >>> factory = SeedSequenceFactory(7)
    >>> a, b = factory.spawn(), factory.spawn()
    >>> a.integers(100) == SeedSequenceFactory(7).spawn().integers(100)
    True
    """

    def __init__(self, root_seed: int | None = None) -> None:
        self._sequence = np.random.SeedSequence(root_seed)
        self._spawned = 0

    @property
    def spawned(self) -> int:
        """Number of child generators handed out so far."""
        return self._spawned

    def spawn(self) -> np.random.Generator:
        """Return the next independent child generator."""
        child = self._sequence.spawn(1)[0]
        self._spawned += 1
        return np.random.default_rng(child)

    def spawn_many(self, count: int) -> list[np.random.Generator]:
        """Return ``count`` independent child generators."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        return [self.spawn() for _ in range(count)]
