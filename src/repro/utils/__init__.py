"""Shared utilities: seeded RNG helpers, timing, and validation guards."""

from repro.utils.rng import SeedSequenceFactory, ensure_rng
from repro.utils.timing import Stopwatch, timed
from repro.utils.validation import (
    check_fraction,
    check_index,
    check_non_negative,
    check_positive,
    check_probability_matrix,
)

__all__ = [
    "SeedSequenceFactory",
    "ensure_rng",
    "Stopwatch",
    "timed",
    "check_fraction",
    "check_index",
    "check_non_negative",
    "check_positive",
    "check_probability_matrix",
]
