"""Durable stream replays: journal + checkpoint wiring and recovery.

:class:`~repro.stream.driver.StreamDriver` constructed with a
``durability=`` config routes every applied change op through a
:class:`DurableStream`: the op (plus the observation record the driver
took) is appended to the write-ahead journal *after* it committed to the
live scheduler, and a full :mod:`checkpoint <repro.resilience.checkpoint>`
of the live state is published every ``checkpoint_every`` records (the
journal is fsynced first, so a checkpoint never claims ops the journal
could lose).

:func:`recover` is the other half of the contract: newest valid
checkpoint + journal-tail replay *through the normal delta path* —
``policy.apply(op)`` exactly as the original run called it.  Checkpoints
carry the accumulated float state (engine mass, capacity sums) bitwise,
restores are verified against the journaled utilities with exact float
equality, and any checkpoint that fails falls back to the next older
one — down to the offset-0 floor, where a fresh bind plus full-journal
replay is bit-exact by construction.  Together this makes the recovered
session bit-identical to an uninterrupted one in every semantic
observable (utility trajectory, schedules, plane contents).
Wall-clock observables (latencies, freeze counters, plane fill stats)
are measured on the resumed process and naturally differ; the kill-point
test suite pins down exactly this split.
"""

from __future__ import annotations

import time
from typing import Any

from repro.algorithms.registry import solver_registry
from repro.core.engine import EngineSpec
from repro.core.errors import CheckpointError, RecoveryError
from repro.data.serialization import instance_from_dict, instance_to_dict
from repro.interactive.locks import LockSet
from repro.resilience.checkpoint import CheckpointStore
from repro.resilience.config import Durability
from repro.resilience.journal import DeltaJournal
from repro.stream.driver import OpRecord, StreamResult
from repro.stream.policies import MaintenancePolicy, make_policy
from repro.stream.trace import ChangeOp, Trace

__all__ = ["DurableStream", "RecoveredStream", "recover"]


def engine_spec_to_dict(spec: EngineSpec) -> dict[str, Any]:
    """JSON-ready form of an :class:`EngineSpec` (checkpoint/journal use)."""
    return {
        "kind": spec.kind,
        "backend": spec.backend,
        "shards": spec.shards,
        "workers": spec.workers,
        "block_users": spec.block_users,
    }


def engine_spec_from_dict(payload: dict[str, Any]) -> EngineSpec:
    return EngineSpec(**payload)


def _checkpoint_body(
    policy: MaintenancePolicy,
    offset: int,
    policy_name: str,
    policy_params: dict[str, Any],
) -> dict[str, Any]:
    """Snapshot everything recovery needs to re-bind at ``offset``."""
    scheduler = policy.scheduler
    return {
        "kind": "stream",
        "offset": offset,
        # checkpoints are the one sanctioned O(instance) snapshot point
        # in the streaming path: cadence-bounded, never per-op
        "instance": instance_to_dict(scheduler.instance),  # ses-lint: disable=freeze-ban
        "schedule": {
            str(event): int(interval)
            for event, interval in sorted(scheduler.schedule.as_mapping().items())
        },
        "k": scheduler.k,
        "locks": None if scheduler.locks is None else scheduler.locks.to_dict(),
        "engine": engine_spec_to_dict(scheduler.engine_spec),
        # accumulated float state, bit-exact: adopting the schedule alone
        # rebuilds engine mass / capacity sums in sorted order, an ulp
        # away from the live accumulation history
        "float_state": scheduler.export_float_state(),
        "policy": {
            "name": policy_name,
            "params": dict(policy_params),
            "state": policy.state_dict(),
        },
    }


def _op_payload(record: OpRecord, op: ChangeOp) -> dict[str, Any]:
    """One journal record: the op plus the driver's observation of it."""
    return {
        "index": record.index,
        "label": record.label,
        "latency": record.latency_seconds,
        "utility": record.utility,
        "schedule_size": record.schedule_size,
        "regret": record.regret,
        "op": op.to_dict(),
    }


def _record_from_payload(payload: dict[str, Any]) -> OpRecord:
    return OpRecord(
        index=int(payload["index"]),
        label=str(payload["label"]),
        latency_seconds=float(payload["latency"]),
        utility=float(payload["utility"]),
        schedule_size=int(payload["schedule_size"]),
        regret=payload.get("regret"),
    )


class DurableStream:
    """The journal+checkpoint side-car of one durable stream replay.

    Created by the driver right after :meth:`MaintenancePolicy.bind`;
    owns the op-commit ordering contract (apply -> journal -> ack) and
    the checkpoint cadence.  ``stop_after`` kill points call
    :meth:`crash` instead of :meth:`finish`, leaving the directory in
    exactly the state a process crash would.
    """

    def __init__(
        self,
        config: Durability,
        journal: DeltaJournal,
        store: CheckpointStore,
        policy: MaintenancePolicy,
        policy_name: str,
        policy_params: dict[str, Any],
    ) -> None:
        self._config = config
        self._journal = journal
        self._store = store
        self._policy = policy
        self._policy_name = policy_name
        self._policy_params = dict(policy_params)

    @classmethod
    def begin(
        cls,
        config: Durability,
        *,
        policy: MaintenancePolicy,
        policy_name: str,
        policy_params: dict[str, Any],
        trace: Trace,
        k: int,
        oracle_every: int | None = None,
        oracle_solver: str = "grd-heap",
    ) -> "DurableStream":
        """Open a fresh durability directory for a just-bound policy.

        Writes the journal header and the offset-0 checkpoint (the bound
        initial state), so recovery always has a floor to stand on.
        Refuses a directory that already holds a journal — recover from
        it instead of silently appending.
        """
        if not policy.bound:
            raise RecoveryError(
                "DurableStream.begin needs a bound policy (bind first)"
            )
        config.directory.mkdir(parents=True, exist_ok=True)
        metadata = {
            "kind": "stream",
            "k": k,
            "n_users": trace.n_users,
            "initial_k": trace.initial_k,
            "n_events": trace.n_events,
            "n_intervals": trace.n_intervals,
            "trace_seed": trace.seed,
            "trace_label": trace.label,
            "policy": {"name": policy_name, "params": dict(policy_params)},
            "engine": engine_spec_to_dict(policy.scheduler.engine_spec),
            "oracle_every": oracle_every,
            "oracle_solver": oracle_solver,
        }
        journal = DeltaJournal.create(
            config.journal_path,
            metadata,
            fsync=config.fsync,
            fsync_every=config.fsync_every,
        )
        store = CheckpointStore(config.checkpoint_directory)
        durable = cls(config, journal, store, policy, policy_name, policy_params)
        durable._checkpoint()
        return durable

    @property
    def offset(self) -> int:
        return self._journal.offset

    def _checkpoint(self) -> None:
        # journal first: a published checkpoint must never claim records
        # the journal could still lose to a crash
        self._journal.sync()
        self._store.write(
            self._journal.offset,
            _checkpoint_body(
                self._policy,
                self._journal.offset,
                self._policy_name,
                self._policy_params,
            ),
        )

    def record(self, op: ChangeOp, record: OpRecord) -> None:
        """Journal one applied op; checkpoint when the cadence comes due."""
        offset = self._journal.append(_op_payload(record, op))
        if offset % self._config.checkpoint_every == 0:
            self._checkpoint()

    def finish(self) -> None:
        """Seal a completed replay: final checkpoint, then close."""
        self._checkpoint()
        self._journal.close()

    def crash(self) -> None:
        """Simulate a process crash (no final checkpoint, no fsync)."""
        self._journal.abandon()


def _restore_checkpoint(
    checkpoint_offset: int,
    body: dict[str, Any],
    scan: Any,
) -> MaintenancePolicy:
    """Restore one checkpoint and replay the journal tail, verified.

    Raises :class:`RecoveryError` on any exact-equality mismatch — the
    restored utility against the journal record the checkpoint claims to
    sit on, and the replayed utility against the journaled one at every
    tail op (JSON round-trips floats losslessly, so exact comparison is
    sound).  The caller falls back to an older checkpoint on failure.
    """
    instance = instance_from_dict(body["instance"])
    engine = engine_spec_from_dict(body["engine"])
    locks = (
        None if body["locks"] is None else LockSet.from_dict(body["locks"])
    )
    policy_info = body["policy"]
    policy = make_policy(policy_info["name"], **policy_info["params"])
    policy.bind(instance, int(body["k"]), engine=engine, locks=locks)
    schedule = {
        int(event): int(interval)
        for event, interval in body["schedule"].items()
    }
    if checkpoint_offset == 0:
        # the recovery floor: bind just re-ran the original initial solve
        # on the original instance, so the live float state is
        # bit-identical by construction — adopting would re-accumulate it
        # in sorted order instead
        if dict(policy.scheduler.schedule.as_mapping()) != schedule:
            raise RecoveryError(
                "offset-0 checkpoint schedule does not match a fresh "
                "bind on the checkpointed instance"
            )
        policy.load_state(policy_info["state"])
    else:
        policy.scheduler.adopt(schedule)
        float_state = body.get("float_state")
        if float_state is not None:
            policy.scheduler.restore_float_state(float_state)
        policy.load_state(policy_info["state"])
        restored = policy.utility()
        journaled = scan.records[checkpoint_offset - 1]["utility"]
        if restored != journaled:
            raise RecoveryError(
                f"checkpoint at offset {checkpoint_offset} restores "
                f"utility {restored!r} but the journal recorded "
                f"{journaled!r} at that offset (accumulation-order drift)"
            )
    # replay the journal tail through the normal delta path
    for payload in scan.records[checkpoint_offset:]:
        op = ChangeOp.from_dict(payload["op"])
        policy.apply(op)
        replayed = policy.utility()
        if replayed != payload["utility"]:
            raise RecoveryError(
                f"replay diverged at op {payload['index']}: journal "
                f"recorded utility {payload['utility']!r} but replay "
                f"produced {replayed!r}"
            )
    return policy


def recover(source: Durability | str) -> "RecoveredStream":
    """Rebuild a durable stream session from its directory.

    Tries checkpoints newest-first among those whose offset the
    surviving journal can cover: re-binds the policy on the checkpointed
    instance, adopts the checkpointed schedule plus the bit-exact float
    state snapshot, restores policy state, and replays the journal tail
    through the normal ``policy.apply`` path — verifying the restored
    and replayed utilities against the journaled ones at every step
    (exact float equality).  A checkpoint that is damaged or fails
    verification is skipped for the next older one; the offset-0
    checkpoint (written at ``begin``) is the guaranteed floor, where a
    fresh bind plus full-journal replay reproduces the original run's
    float state bit-for-bit by construction.
    """
    config = source if isinstance(source, Durability) else Durability(source)
    journal, scan = DeltaJournal.open(
        config.journal_path, fsync=config.fsync, fsync_every=config.fsync_every
    )
    try:
        metadata = scan.metadata
        if metadata.get("kind") != "stream":
            raise RecoveryError(
                f"journal {config.journal_path} holds a "
                f"{metadata.get('kind')!r} session, not a stream replay"
            )
        store = CheckpointStore(config.checkpoint_directory)
        candidates = [
            offset
            for offset in reversed(store.offsets())
            if offset <= scan.offset
        ]
        policy: MaintenancePolicy | None = None
        checkpoint_offset = -1
        failures: list[str] = []
        for candidate in candidates:
            try:
                body = store.load(candidate)
            except CheckpointError as error:
                failures.append(str(error))
                continue
            if body.get("kind") != "stream":
                failures.append(
                    f"checkpoint at offset {candidate} is not a stream "
                    f"checkpoint"
                )
                continue
            try:
                policy = _restore_checkpoint(candidate, body, scan)
                checkpoint_offset = candidate
                break
            except RecoveryError as error:
                failures.append(str(error))
                continue
        if policy is None:
            detail = f" ({'; '.join(failures[-3:])})" if failures else ""
            raise RecoveryError(
                f"no checkpoint at or below journal offset {scan.offset} "
                f"in {config.checkpoint_directory} could be "
                f"restored{detail}"
            )
    except BaseException:
        journal.abandon()
        raise
    return RecoveredStream(
        config=config,
        journal=journal,
        store=store,
        policy=policy,
        metadata=metadata,
        prefix=list(scan.records),
        checkpoint_offset=checkpoint_offset,
    )


class RecoveredStream:
    """A durable stream session restored to its last journaled op.

    ``offset`` ops of the original trace are already absorbed; call
    :meth:`resume` with the *same* trace to run the remainder and get a
    :class:`StreamResult` covering the full replay (journaled prefix +
    resumed tail).
    """

    def __init__(
        self,
        *,
        config: Durability,
        journal: DeltaJournal,
        store: CheckpointStore,
        policy: MaintenancePolicy,
        metadata: dict[str, Any],
        prefix: list[dict[str, Any]],
        checkpoint_offset: int,
    ) -> None:
        self._config = config
        self._journal = journal
        self._store = store
        self._policy = policy
        self._metadata = metadata
        self._prefix = prefix
        self._checkpoint_offset = checkpoint_offset

    @property
    def offset(self) -> int:
        """Journal records already absorbed (where :meth:`resume` starts)."""
        return len(self._prefix)

    @property
    def checkpoint_offset(self) -> int:
        """Offset of the checkpoint recovery restarted from."""
        return self._checkpoint_offset

    @property
    def policy(self) -> MaintenancePolicy:
        return self._policy

    @property
    def metadata(self) -> dict[str, Any]:
        return dict(self._metadata)

    def utility(self) -> float:
        return self._policy.utility()

    def _validate_trace(self, trace: Trace) -> None:
        checks = (
            ("n_users", trace.n_users),
            ("initial_k", trace.initial_k),
            ("n_events", trace.n_events),
            ("n_intervals", trace.n_intervals),
        )
        for name, value in checks:
            recorded = self._metadata.get(name)
            if recorded is not None and value is not None and recorded != value:
                raise RecoveryError(
                    f"trace {name}={value} does not match the journaled "
                    f"session ({name}={recorded})"
                )
        if len(trace) < self.offset:
            raise RecoveryError(
                f"trace has {len(trace)} ops but the journal already "
                f"holds {self.offset}"
            )
        for payload in self._prefix:
            index = int(payload["index"])
            if trace.ops[index].to_dict() != payload["op"]:
                raise RecoveryError(
                    f"trace op {index} does not match the journaled op; "
                    f"resume needs the exact original trace"
                )

    def _oracle_regret(self, solver_name: str) -> float:
        live = self._policy.scheduler
        oracle = solver_registry.create(
            solver_name, engine=live.engine_spec
        ).solve(live.live, live.k, plane=live.base_plane(), locks=live.locks)
        return oracle.utility - self._policy.utility()

    def resume(self, trace: Trace, *, stop_after: int | None = None) -> StreamResult:
        """Run the un-absorbed remainder of ``trace`` to completion.

        Journaling and checkpoint cadence continue exactly as in the
        original run, so a resumed session is itself durable (and can be
        killed and recovered again — the kill-point suite does).  The
        returned result covers the *whole* replay: per-op records of the
        journaled prefix are reconstructed from the journal (their
        latencies are the original run's measurements), the tail's are
        measured live.
        """
        if self._journal.closed:
            raise RecoveryError("this RecoveredStream was already resumed")
        self._validate_trace(trace)
        policy = self._policy
        oracle_every = self._metadata.get("oracle_every")
        oracle_solver = self._metadata.get("oracle_solver") or "grd-heap"
        durable = DurableStream(
            self._config,
            self._journal,
            self._store,
            policy,
            self._metadata["policy"]["name"],
            self._metadata["policy"]["params"],
        )
        started = time.perf_counter()
        records = [_record_from_payload(payload) for payload in self._prefix]
        interrupted = False
        for index in range(self.offset, len(trace)):
            if stop_after is not None and index >= stop_after:
                interrupted = True
                break
            op = trace.ops[index]
            op_started = time.perf_counter()
            policy.apply(op)
            latency = time.perf_counter() - op_started
            regret: float | None = None
            if oracle_every is not None and (index + 1) % oracle_every == 0:
                regret = self._oracle_regret(oracle_solver)
            record = OpRecord(
                index=index,
                label=op.label(),
                latency_seconds=latency,
                utility=policy.utility(),
                schedule_size=len(policy.schedule),
                regret=regret,
            )
            records.append(record)
            durable.record(op, record)

        if interrupted:
            durable.crash()
            finish_seconds = 0.0
        else:
            finish_started = time.perf_counter()
            policy.finish()
            finish_seconds = time.perf_counter() - finish_started
            durable.finish()

        live = policy.scheduler
        base_plane = live.materialized_base_plane
        return StreamResult(
            policy=policy.describe(),
            engine=live.engine_spec,
            records=tuple(records),
            final_utility=policy.utility(),
            final_schedule=live.schedule.as_mapping(),
            final_k=live.k,
            rebuilds=policy.rebuilds,
            finish_seconds=finish_seconds,
            total_seconds=time.perf_counter() - started,
            freezes=live.live.freezes,
            base_plane_stats=(
                None if base_plane is None else base_plane.stats()
            ),
        )
