"""Crash safety and fault tolerance for durable SES sessions.

Four pillars:

* :class:`DeltaJournal` — an append-only, CRC-framed write-ahead log
  (format ``ses-wal/1``) of every applied change op, with torn-tail
  repair on re-open and configurable fsync policy.
* :class:`CheckpointStore` — periodic atomic snapshots (``ses-ckpt/1``)
  of live session state, published via temp sibling + ``os.replace``.
* :func:`recover` — newest valid checkpoint + journal-tail replay
  through the normal delta path; a recovered stream session is
  bit-identical to an uninterrupted one (the kill-point suite proves it
  at every op index).  Serving sessions recover through
  :meth:`repro.serve.session.ServingSession.recover`.
* :class:`FaultPlan` / :class:`RetryPolicy` — deterministic seeded
  fault injection for executors and pool writers, with bounded
  seeded-jitter retries and a serial fallback that makes fault-injected
  runs converge to the fault-free result.

:class:`Durability` is the single config object the driver and serving
session take to turn all of this on.
"""

from repro.core.errors import (
    CheckpointError,
    InjectedFault,
    JournalError,
    RecoveryError,
)
from repro.resilience.checkpoint import CHECKPOINT_FORMAT, CheckpointStore
from repro.resilience.config import Durability
from repro.resilience.faults import FaultInjector, FaultPlan, RetryPolicy
from repro.resilience.journal import (
    FSYNC_POLICIES,
    JOURNAL_FORMAT,
    DeltaJournal,
    JournalScan,
)
from repro.resilience.stream import DurableStream, RecoveredStream, recover

__all__ = [
    "Durability",
    "DeltaJournal",
    "JournalScan",
    "JOURNAL_FORMAT",
    "FSYNC_POLICIES",
    "CheckpointStore",
    "CHECKPOINT_FORMAT",
    "FaultPlan",
    "FaultInjector",
    "RetryPolicy",
    "InjectedFault",
    "DurableStream",
    "RecoveredStream",
    "recover",
    "JournalError",
    "CheckpointError",
    "RecoveryError",
]
