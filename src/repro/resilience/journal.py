"""DeltaJournal: an append-only, CRC-framed write-ahead log (``ses-wal/1``).

Durable sessions journal every applied change op *after* it commits to
the in-memory live state and *before* the caller is acknowledged; replay
of the journal through the normal delta path is therefore exactly a
replay of the acknowledged history.  The on-disk format is length- and
CRC-framed JSONL, one record per line::

    <payload-bytes>:<crc32-hex>:<canonical-json-payload>\n

where ``payload-bytes`` is the UTF-8 byte length of the JSON part and
the CRC32 is computed over those same bytes.  The first record is the
header (format tag ``ses-wal/1`` plus session metadata); every later
record is one journal entry.  Canonical JSON (sorted keys, minimal
separators) keeps the encoding deterministic: the same history always
produces byte-identical journals.

Torn tails vs. corruption
-------------------------
A crash mid-append leaves at most one partial record at the *end* of the
file.  :meth:`DeltaJournal.open` scans the frame chain and truncates
that torn tail in place — an expected, silent repair.  A record that
fails its frame or CRC while *later* records still decode is a different
animal entirely (bit rot, concurrent writers, a seek bug) and raises
:class:`~repro.core.errors.JournalError` instead of guessing.

Fsync policy
------------
``"always"`` fsyncs after every append (each acknowledged op survives a
power cut), ``"interval"`` fsyncs every ``fsync_every`` appends and on
:meth:`sync`/:meth:`close` (bounded loss window, much cheaper), and
``"never"`` leaves flushing to the OS (benchmarks).  Checkpoint writers
call :meth:`sync` before publishing a checkpoint, so a checkpoint's
offset never points past the durable journal prefix.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path
from typing import Any

from repro.core.errors import JournalError

__all__ = ["JOURNAL_FORMAT", "FSYNC_POLICIES", "DeltaJournal", "JournalScan"]

#: Format tag written into every journal header.
JOURNAL_FORMAT = "ses-wal/1"

#: Accepted fsync policies, strictest first.
FSYNC_POLICIES = ("always", "interval", "never")


def _canonical(payload: dict[str, Any]) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _frame(payload: dict[str, Any]) -> bytes:
    body = _canonical(payload).encode("utf-8")
    crc = zlib.crc32(body) & 0xFFFFFFFF
    return b"%d:%08x:%s\n" % (len(body), crc, body)


def _parse_frame(line: bytes) -> dict[str, Any] | None:
    """Decode one framed line; ``None`` when the frame is invalid/torn."""
    head, sep, rest = line.partition(b":")
    if not sep:
        return None
    crc_hex, sep, body = rest.partition(b":")
    if not sep or len(crc_hex) != 8:
        return None
    try:
        length = int(head)
        crc = int(crc_hex, 16)
    except ValueError:
        return None
    if length != len(body) or (zlib.crc32(body) & 0xFFFFFFFF) != crc:
        return None
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    if not isinstance(payload, dict):
        return None
    return payload


class JournalScan:
    """Read-only decode of a journal file (see :meth:`DeltaJournal.scan`)."""

    __slots__ = ("metadata", "records", "valid_bytes", "truncated_bytes")

    def __init__(
        self,
        metadata: dict[str, Any],
        records: list[dict[str, Any]],
        valid_bytes: int,
        truncated_bytes: int,
    ) -> None:
        self.metadata = metadata
        self.records = records
        #: Byte length of the valid header+records prefix.
        self.valid_bytes = valid_bytes
        #: Bytes of torn tail found after the valid prefix (0 when clean).
        self.truncated_bytes = truncated_bytes

    @property
    def offset(self) -> int:
        """Number of decoded journal records (the journal offset)."""
        return len(self.records)


def _scan_bytes(raw: bytes, path: Path) -> JournalScan:
    if not raw:
        raise JournalError(f"journal {path} is empty (no header record)")
    offset = 0
    frames: list[dict[str, Any]] = []
    torn_at: int | None = None
    while offset < len(raw):
        newline = raw.find(b"\n", offset)
        if newline < 0:
            torn_at = offset  # unterminated final line: torn append
            break
        payload = _parse_frame(raw[offset:newline])
        if payload is None:
            torn_at = offset
            break
        frames.append(payload)
        offset = newline + 1
    if torn_at is not None:
        # only the *tail* may be torn: any decodable record after the
        # damaged line means mid-file corruption, which repair must not
        # eat.  The damaged line itself is excluded — an unterminated
        # final frame can still parse (the crash ate only the newline)
        # yet remains a torn tail
        for line in raw[torn_at:].split(b"\n")[1:]:
            if line and _parse_frame(line) is not None:
                raise JournalError(
                    f"journal {path} has a corrupt record at byte {torn_at} "
                    f"followed by valid records; refusing to truncate "
                    f"mid-file damage"
                )
    valid_bytes = offset if torn_at is None else torn_at
    if not frames:
        raise JournalError(
            f"journal {path} has no intact header record"
        )
    header = frames[0]
    if header.get("format") != JOURNAL_FORMAT:
        raise JournalError(
            f"journal {path} has format {header.get('format')!r}; "
            f"expected {JOURNAL_FORMAT!r}"
        )
    return JournalScan(
        metadata=header,
        records=frames[1:],
        valid_bytes=valid_bytes,
        truncated_bytes=len(raw) - valid_bytes,
    )


class DeltaJournal:
    """Append-only WAL of change-op payloads with torn-tail repair.

    Use :meth:`create` for a fresh journal and :meth:`open` to re-attach
    after a crash (tail repair happens there).  ``offset`` counts
    appended records, excluding the header — the same coordinate
    checkpoints are stamped with.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        fsync: str = "interval",
        fsync_every: int = 8,
        _handle: Any = None,
        _metadata: dict[str, Any] | None = None,
        _offset: int = 0,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"unknown fsync policy {fsync!r}; choose from {FSYNC_POLICIES}"
            )
        if fsync_every < 1:
            raise ValueError(f"fsync_every must be positive, got {fsync_every}")
        if _handle is None:
            raise TypeError(
                "construct journals through DeltaJournal.create() or "
                "DeltaJournal.open(), not directly"
            )
        self._path = Path(path)
        self._fsync = fsync
        self._fsync_every = fsync_every
        self._handle = _handle
        self._metadata = dict(_metadata or {})
        self._offset = _offset
        self._unsynced = 0

    # -- constructors ----------------------------------------------------
    @classmethod
    def create(
        cls,
        path: str | Path,
        metadata: dict[str, Any] | None = None,
        *,
        fsync: str = "interval",
        fsync_every: int = 8,
    ) -> "DeltaJournal":
        """Start a fresh journal; refuses to clobber an existing one."""
        path = Path(path)
        if path.exists():
            raise JournalError(
                f"journal {path} already exists; recover() from it or "
                f"choose a fresh durability directory"
            )
        header = {"format": JOURNAL_FORMAT}
        header.update(metadata or {})
        handle = open(path, "ab")
        journal = cls(
            path, fsync=fsync, fsync_every=fsync_every,
            _handle=handle, _metadata=header, _offset=0,
        )
        handle.write(_frame(header))
        journal.sync()
        return journal

    @classmethod
    def open(
        cls,
        path: str | Path,
        *,
        fsync: str = "interval",
        fsync_every: int = 8,
    ) -> tuple["DeltaJournal", JournalScan]:
        """Re-attach for append after a crash, repairing any torn tail.

        Returns the journal (positioned after the last intact record)
        plus the scan of the surviving records, so recovery can replay
        them without reading the file twice.
        """
        path = Path(path)
        try:
            raw = path.read_bytes()
        except FileNotFoundError as exc:
            raise JournalError(f"journal {path} does not exist") from exc
        scan = _scan_bytes(raw, path)
        if scan.truncated_bytes:
            with open(path, "r+b") as repair:
                repair.truncate(scan.valid_bytes)
                repair.flush()
                os.fsync(repair.fileno())
        handle = open(path, "ab")
        journal = cls(
            path, fsync=fsync, fsync_every=fsync_every,
            _handle=handle, _metadata=scan.metadata, _offset=scan.offset,
        )
        return journal, scan

    @classmethod
    def scan(cls, path: str | Path) -> JournalScan:
        """Decode a journal read-only (no repair, no file modification)."""
        path = Path(path)
        try:
            raw = path.read_bytes()
        except FileNotFoundError as exc:
            raise JournalError(f"journal {path} does not exist") from exc
        return _scan_bytes(raw, path)

    # -- introspection ---------------------------------------------------
    @property
    def path(self) -> Path:
        return self._path

    @property
    def offset(self) -> int:
        """Records appended so far (the checkpoint coordinate)."""
        return self._offset

    @property
    def metadata(self) -> dict[str, Any]:
        return dict(self._metadata)

    @property
    def closed(self) -> bool:
        return self._handle is None

    # -- the append path -------------------------------------------------
    def append(self, payload: dict[str, Any]) -> int:
        """Append one record; returns the new offset."""
        if self._handle is None:
            raise JournalError(f"journal {self._path} is closed")
        self._handle.write(_frame(payload))
        self._offset += 1
        self._unsynced += 1
        if self._fsync == "always" or (
            self._fsync == "interval" and self._unsynced >= self._fsync_every
        ):
            self.sync()
        return self._offset

    def sync(self) -> None:
        """Flush and fsync everything appended so far."""
        if self._handle is None:
            return
        self._handle.flush()
        if self._fsync != "never":
            os.fsync(self._handle.fileno())
        self._unsynced = 0

    def close(self) -> None:
        if self._handle is None:
            return
        self.sync()
        self._handle.close()
        self._handle = None

    def abandon(self) -> None:
        """Drop the handle without the final fsync — the crash simulator.

        Buffered appends are flushed to the OS (a process crash loses
        user-space buffers, not the page cache) but never fsynced, and no
        clean shutdown marker of any kind is written; :meth:`open` on the
        same path afterwards exercises exactly the post-crash repair
        path.  Used by ``stop_after`` kill-point replays.
        """
        if self._handle is None:
            return
        self._handle.flush()
        self._handle.close()
        self._handle = None

    def __enter__(self) -> "DeltaJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self.closed else f"offset={self._offset}"
        return f"DeltaJournal({str(self._path)!r}, {state})"
