"""Journal codec for serving-session mutations (``ses-wal/1``, kind "serve").

A durable :class:`~repro.serve.session.ServingSession` journals every
committed mutation — the four single-writer operations — as one record
each, *after* the pool write commits and *before* the caller is
acknowledged.  Interest columns are journaled as full dense lists
(``LiveInstance`` mutators take dense columns; JSON round-trips floats
losslessly), so replaying a record through the normal mutator is exactly
a replay of the acknowledged call.

:func:`replay_mutation` is recovery's half: dispatch one journal record
back through the session's public mutator, which routes it through
:meth:`~repro.serve.pool.PlanePool.write` just like the original call —
generation counters and plane contents line up bit-for-bit with an
uninterrupted session.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

import numpy as np

from repro.core.errors import RecoveryError

if TYPE_CHECKING:
    from repro.serve.session import ServingSession

__all__ = [
    "SERVE_MUTATION_KINDS",
    "column_payload",
    "replay_mutation",
]

#: Journal record kinds a serving session emits, one per mutator.
SERVE_MUTATION_KINDS = (
    "add_event",
    "cancel_event",
    "update_event_interest",
    "add_competing",
)


def column_payload(column: Any) -> list[float]:
    """Canonical journal encoding of one interest column."""
    return [float(v) for v in np.asarray(column, dtype=float)]


def replay_mutation(session: "ServingSession", payload: dict[str, Any]) -> None:
    """Re-apply one journaled mutation through the session's mutators."""
    kind = payload.get("kind")
    if kind == "add_event":
        session.add_event(
            location=int(payload["location"]),
            required_resources=float(payload["required_resources"]),
            interest_column=np.asarray(payload["interest"], dtype=float),
            name=str(payload["name"]),
            tags=frozenset(payload["tags"]),
        )
    elif kind == "cancel_event":
        session.cancel_event(int(payload["event"]))
    elif kind == "update_event_interest":
        session.update_event_interest(
            int(payload["event"]),
            np.asarray(payload["interest"], dtype=float),
        )
    elif kind == "add_competing":
        session.add_competing(
            interval=int(payload["interval"]),
            interest_column=np.asarray(payload["interest"], dtype=float),
            name=str(payload["name"]),
        )
    else:
        raise RecoveryError(
            f"unknown serve journal record kind {kind!r}; "
            f"choose from {SERVE_MUTATION_KINDS}"
        )
