"""Atomic checkpoints of durable-session state (``ses-ckpt/1``).

A checkpoint is a full snapshot of a durable session's live state —
frozen instance (via the existing JSON serialization), schedule, locks,
policy state — stamped with the journal offset it was taken at.  Files
are written atomically (temp sibling + ``os.replace`` + directory
fsync), so a crash mid-checkpoint leaves either the previous checkpoint
set or the new one, never a torn file; the payload additionally embeds a
CRC32 over its canonical body so a damaged file is *detected* and
skipped rather than trusted.

Recovery policy: newest-valid-wins among checkpoints whose offset does
not exceed the journal's surviving record count (a checkpoint may claim
ops a torn journal tail lost only if fsync discipline was violated; the
filter makes recovery robust to that too).  Checkpoint files are named
``ckpt-<offset:08d>.json`` so the newest is a filename sort away.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path
from typing import Any

from repro.core.errors import CheckpointError

__all__ = ["CHECKPOINT_FORMAT", "CheckpointStore"]

#: Format tag embedded in every checkpoint file.
CHECKPOINT_FORMAT = "ses-ckpt/1"


def _canonical(payload: dict[str, Any]) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


class CheckpointStore:
    """A directory of numbered, atomic, CRC-verified checkpoints."""

    def __init__(self, directory: str | Path) -> None:
        self._directory = Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)

    @property
    def directory(self) -> Path:
        return self._directory

    def _path_for(self, offset: int) -> Path:
        return self._directory / f"ckpt-{offset:08d}.json"

    # -- writing ---------------------------------------------------------
    def write(self, offset: int, body: dict[str, Any]) -> Path:
        """Publish a checkpoint for journal ``offset`` atomically.

        The body is wrapped in an envelope carrying the format tag and a
        CRC32 of the canonical body encoding; the file lands via temp
        sibling + ``os.replace`` and the directory entry is fsynced, so
        a reader either sees a complete, verifiable checkpoint or none.
        """
        if offset < 0:
            raise ValueError(f"checkpoint offset must be >= 0, got {offset}")
        encoded = _canonical(body)
        envelope = {
            "format": CHECKPOINT_FORMAT,
            "offset": offset,
            "crc": zlib.crc32(encoded.encode("utf-8")) & 0xFFFFFFFF,
            "body": body,
        }
        path = self._path_for(offset)
        tmp = path.with_name(path.name + f".tmp-{os.getpid()}")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(envelope, handle, sort_keys=True, separators=(",", ":"))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        self._fsync_directory()
        return path

    def _fsync_directory(self) -> None:
        try:
            fd = os.open(self._directory, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform-dependent
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    # -- reading ---------------------------------------------------------
    def offsets(self) -> list[int]:
        """Offsets of all checkpoint files present, ascending (unverified)."""
        out = []
        for path in self._directory.glob("ckpt-*.json"):
            stem = path.stem[len("ckpt-"):]
            if stem.isdigit():
                out.append(int(stem))
        return sorted(out)

    def load(self, offset: int) -> dict[str, Any]:
        """Decode and verify the checkpoint at ``offset``.

        Raises :class:`CheckpointError` when the file is missing, torn,
        fails its CRC, or carries an unknown format tag.
        """
        path = self._path_for(offset)
        try:
            raw = path.read_text(encoding="utf-8")
        except FileNotFoundError as exc:
            raise CheckpointError(f"no checkpoint at offset {offset}") from exc
        try:
            envelope = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise CheckpointError(f"checkpoint {path} is not valid JSON") from exc
        if not isinstance(envelope, dict):
            raise CheckpointError(f"checkpoint {path} is not an object")
        if envelope.get("format") != CHECKPOINT_FORMAT:
            raise CheckpointError(
                f"checkpoint {path} has format {envelope.get('format')!r}; "
                f"expected {CHECKPOINT_FORMAT!r}"
            )
        body = envelope.get("body")
        if not isinstance(body, dict):
            raise CheckpointError(f"checkpoint {path} has no body")
        encoded = _canonical(body)
        if (zlib.crc32(encoded.encode("utf-8")) & 0xFFFFFFFF) != envelope.get("crc"):
            raise CheckpointError(f"checkpoint {path} fails its CRC check")
        if envelope.get("offset") != offset:
            raise CheckpointError(
                f"checkpoint {path} claims offset {envelope.get('offset')!r}"
            )
        return body

    def newest_valid(
        self, max_offset: int | None = None
    ) -> tuple[int, dict[str, Any]] | None:
        """The newest verifiable checkpoint with offset <= ``max_offset``.

        Damaged candidates are skipped (newest-valid-wins); ``None`` when
        no checkpoint survives at all.
        """
        for offset in reversed(self.offsets()):
            if max_offset is not None and offset > max_offset:
                continue
            try:
                return offset, self.load(offset)
            except CheckpointError:
                continue
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CheckpointStore({str(self._directory)!r})"
