"""Deterministic fault injection: seeded plans, bounded seeded retries.

Chaos testing is only evidence when it is *replayable*: the same seed
must inject the same faults at the same sites in the same order, so a
fault-induced divergence is a reproducible bug report rather than a
flaky CI run.  :class:`FaultPlan` is that seed — a frozen description of
per-site fault probabilities.  Each injection site draws from its own
``SeedSequence(plan.seed, crc32(site))`` stream, and the dispatch layers
(:meth:`repro.shard.executor.ShardExecutor.map`,
:meth:`repro.serve.pool.PlanePool.write`) draw *serially before*
fanning work out, so thread scheduling can never reorder the stream.

:class:`RetryPolicy` pairs with it: bounded retries with exponential
backoff whose jitter is itself seeded (``SeedSequence(seed, site_key,
attempt)``), and a serial-executor fallback once a thunk has failed
``fallback_after`` parallel attempts — the escape hatch that makes
fault-injected runs *converge* to the fault-free result (the resilience
benchmark's bitwise gate).
"""

from __future__ import annotations

import threading
import zlib
from dataclasses import dataclass

import numpy as np

from repro.core.errors import InjectedFault

__all__ = [
    "FaultPlan",
    "FaultInjector",
    "RetryPolicy",
    "InjectedFault",
]

#: Fault kinds a plan can inject at executor sites, in cumulative-draw
#: order (the order fixes which uniform draw maps to which fault).
EXECUTOR_FAULT_KINDS = ("worker_crash", "worker_stall", "io_error")


@dataclass(frozen=True)
class FaultPlan:
    """A frozen, seeded description of what to break and how often.

    Probabilities are per dispatch: each thunk handed to a
    :class:`~repro.shard.executor.ShardExecutor` draws once against
    ``worker_crash`` / ``worker_stall`` / ``io_error`` (crash and IO
    faults raise :class:`InjectedFault`; stalls sleep
    ``stall_seconds`` and then succeed), and each
    :meth:`~repro.serve.pool.PlanePool.write` draws once against
    ``writer_stall`` (the writer sleeps while holding the pool lock —
    exactly the scenario degraded reads exist for).
    """

    seed: int
    worker_crash: float = 0.0
    worker_stall: float = 0.0
    io_error: float = 0.0
    writer_stall: float = 0.0
    stall_seconds: float = 0.002

    def __post_init__(self) -> None:
        if self.seed < 0:
            raise ValueError(f"seed must be non-negative, got {self.seed}")
        for name in ("worker_crash", "worker_stall", "io_error", "writer_stall"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(
                    f"{name} must be a probability in [0, 1], got {value}"
                )
        if self.worker_crash + self.worker_stall + self.io_error > 1.0:
            raise ValueError(
                "executor fault probabilities must sum to at most 1"
            )
        if self.stall_seconds < 0:
            raise ValueError(
                f"stall_seconds must be non-negative, got {self.stall_seconds}"
            )

    def injector(self) -> "FaultInjector":
        """A fresh runtime injector (per executor/pool instance)."""
        return FaultInjector(self)


def _site_key(site: str) -> int:
    return zlib.crc32(site.encode("utf-8")) & 0xFFFFFFFF


class FaultInjector:
    """Mutable runtime state of one plan: per-site RNG streams + counters.

    Draws are serialized under a lock and each site owns its own seeded
    stream, so the fault sequence at a site depends only on the plan seed
    and how many draws that site has made — never on thread timing.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self._plan = plan
        self._lock = threading.Lock()
        self._rngs: dict[str, np.random.Generator] = {}
        self._counts: dict[str, int] = {}

    @property
    def plan(self) -> FaultPlan:
        return self._plan

    def _rng(self, site: str) -> np.random.Generator:
        rng = self._rngs.get(site)
        if rng is None:
            rng = np.random.default_rng(
                np.random.SeedSequence((self._plan.seed, _site_key(site)))
            )
            self._rngs[site] = rng
        return rng

    def _record(self, site: str, kind: str) -> None:
        key = f"{site}:{kind}"
        self._counts[key] = self._counts.get(key, 0) + 1

    def draw_executor(self, site: str) -> str | None:
        """One executor-site draw: a fault kind or ``None`` (healthy)."""
        plan = self._plan
        if plan.worker_crash + plan.worker_stall + plan.io_error == 0.0:
            return None
        with self._lock:
            u = float(self._rng(site).random())
            edge = plan.worker_crash
            if u < edge:
                self._record(site, "worker_crash")
                return "worker_crash"
            edge += plan.worker_stall
            if u < edge:
                self._record(site, "worker_stall")
                return "worker_stall"
            edge += plan.io_error
            if u < edge:
                self._record(site, "io_error")
                return "io_error"
            return None

    def draw_writer(self, site: str) -> bool:
        """One writer-site draw: whether this write stalls."""
        if self._plan.writer_stall == 0.0:
            return False
        with self._lock:
            stalled = float(self._rng(site).random()) < self._plan.writer_stall
            if stalled:
                self._record(site, "writer_stall")
            return stalled

    def counts(self) -> dict[str, int]:
        """Injected-fault counters keyed ``site:kind`` (sorted)."""
        with self._lock:
            return dict(sorted(self._counts.items()))


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with deterministic seeded-jitter backoff.

    ``max_retries`` caps parallel re-dispatch rounds; a thunk that has
    failed ``fallback_after`` attempts stops being retried in the pool
    and runs on the serial fallback path instead (fault injection covers
    the parallel dispatch path only, so the fallback always terminates).
    ``delay(attempt, key)`` is the backoff before retry ``attempt`` of
    work item ``key``: ``backoff_base * backoff_factor**attempt`` scaled
    by a jitter factor in ``[1 - jitter, 1 + jitter]`` drawn from
    ``SeedSequence(seed, key, attempt)`` — reproducible down to the
    sleep schedule.
    """

    max_retries: int = 3
    backoff_base: float = 0.001
    backoff_factor: float = 2.0
    jitter: float = 0.5
    fallback_after: int = 2
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_base < 0:
            raise ValueError(
                f"backoff_base must be >= 0, got {self.backoff_base}"
            )
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(
                f"jitter must lie in [0, 1], got {self.jitter}"
            )
        if self.fallback_after < 1:
            raise ValueError(
                f"fallback_after must be positive, got {self.fallback_after}"
            )
        if self.seed < 0:
            raise ValueError(f"seed must be non-negative, got {self.seed}")

    def delay(self, attempt: int, key: int = 0) -> float:
        """Seconds to back off before retry ``attempt`` (0-based) of ``key``."""
        if attempt < 0:
            raise ValueError(f"attempt must be >= 0, got {attempt}")
        base = self.backoff_base * self.backoff_factor**attempt
        if self.jitter == 0.0 or base == 0.0:
            return base
        rng = np.random.default_rng(
            np.random.SeedSequence((self.seed, key, attempt))
        )
        scale = 1.0 + self.jitter * (2.0 * float(rng.random()) - 1.0)
        return base * scale
