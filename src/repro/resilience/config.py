"""Durability: the one knob durable sessions take.

``Durability(path)`` names a directory that will hold the session's
write-ahead journal (``wal.jsonl``, format ``ses-wal/1``) and its
checkpoint set (``checkpoints/ckpt-<offset>.json``, ``ses-ckpt/1``).
:class:`~repro.stream.driver.StreamDriver` and
:class:`~repro.serve.session.ServingSession` both accept it; recovery
(:func:`repro.resilience.recover` / ``ServingSession.recover``) needs
only the directory.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.resilience.journal import FSYNC_POLICIES

__all__ = ["Durability"]


@dataclass(frozen=True)
class Durability:
    """Configuration of a durable session's journal + checkpoint cadence.

    Parameters
    ----------
    path:
        Directory for the journal and checkpoints.  Created on first
        use; a directory already holding a journal is rejected at bind
        time (recover from it instead of silently appending).
    checkpoint_every:
        Journal records between checkpoints.  A checkpoint at offset 0
        (the initial state) is always written, so recovery replays at
        most ``checkpoint_every`` ops plus whatever followed the last
        checkpoint.
    fsync:
        Journal fsync policy — ``"always"``, ``"interval"`` (every
        ``fsync_every`` appends; the default) or ``"never"``.
        Checkpoints always sync the journal first, so a published
        checkpoint never outruns the durable journal prefix.
    fsync_every:
        Append interval for the ``"interval"`` policy.
    """

    path: str | Path
    checkpoint_every: int = 16
    fsync: str = "interval"
    fsync_every: int = 8

    def __post_init__(self) -> None:
        if self.checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be positive, got {self.checkpoint_every}"
            )
        if self.fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"unknown fsync policy {self.fsync!r}; "
                f"choose from {FSYNC_POLICIES}"
            )
        if self.fsync_every < 1:
            raise ValueError(
                f"fsync_every must be positive, got {self.fsync_every}"
            )

    @property
    def directory(self) -> Path:
        return Path(self.path)

    @property
    def journal_path(self) -> Path:
        return self.directory / "wal.jsonl"

    @property
    def checkpoint_directory(self) -> Path:
        return self.directory / "checkpoints"
