"""Deterministic user -> block -> shard layout.

The plan separates two concerns that are easy to conflate:

- **Blocks** are the unit of *accumulation*.  Block size is fixed by
  ``block_users`` and never depends on the shard count, and partial results
  are always merged in ascending block order, so the floating-point
  association of every merged sum is identical for P=1 and P=64.
- **Shards** are the unit of *dispatch*: contiguous runs of blocks handed
  to one worker.  Changing ``n_shards`` only regroups blocks; it cannot
  change any merged value.

Per-block RNG streams spawn from a single ``SeedSequenceFactory`` root in
block order, so synthesized data is independent of both the shard count and
worker scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.rng import SeedSequenceFactory

DEFAULT_BLOCK_USERS = 16384
"""Rows per accumulation block.  Fixed so merged sums are P-independent."""


@dataclass(frozen=True, slots=True)
class ShardPlan:
    """Seeded, deterministic partition of ``n_users`` rows.

    Users are assigned to contiguous blocks of ``block_users`` rows; blocks
    are grouped into ``n_shards`` contiguous shards with near-equal block
    counts (``numpy.array_split`` semantics).
    """

    n_users: int
    n_shards: int = 1
    block_users: int = DEFAULT_BLOCK_USERS
    seed: int | None = field(default=None, compare=True)

    def __post_init__(self) -> None:
        if self.n_users < 1:
            raise ValueError(f"n_users must be positive, got {self.n_users}")
        if self.n_shards < 1:
            raise ValueError(f"n_shards must be positive, got {self.n_shards}")
        if self.block_users < 1:
            raise ValueError(
                f"block_users must be positive, got {self.block_users}"
            )

    @property
    def n_blocks(self) -> int:
        return -(-self.n_users // self.block_users)

    def block_bounds(self, block: int) -> tuple[int, int]:
        """Half-open global row range ``[lo, hi)`` covered by ``block``."""
        if not 0 <= block < self.n_blocks:
            raise IndexError(f"block {block} out of range [0, {self.n_blocks})")
        lo = block * self.block_users
        return lo, min(lo + self.block_users, self.n_users)

    def block_of_user(self, user: int) -> int:
        if not 0 <= user < self.n_users:
            raise IndexError(f"user {user} out of range [0, {self.n_users})")
        return user // self.block_users

    def shard_blocks(self, shard: int) -> range:
        """Contiguous block indices dispatched to ``shard``."""
        if not 0 <= shard < self.n_shards:
            raise IndexError(f"shard {shard} out of range [0, {self.n_shards})")
        n, p = self.n_blocks, self.n_shards
        size, extra = divmod(n, p)
        lo = shard * size + min(shard, extra)
        return range(lo, lo + size + (1 if shard < extra else 0))

    def shard_of_user(self, user: int) -> int:
        block = self.block_of_user(user)
        for shard in range(self.n_shards):
            if block in self.shard_blocks(shard):
                return shard
        raise AssertionError("unreachable: every block belongs to a shard")

    def block_streams(self) -> list[np.random.Generator]:
        """One RNG stream per block, spawned from the root in block order.

        Spawn order is the block order, so the streams -- and anything
        synthesized from them -- are independent of the shard count and of
        worker scheduling.
        """
        factory = SeedSequenceFactory(self.seed)
        return factory.spawn_many(self.n_blocks)

    def block_slices(
        self, rows: np.ndarray
    ) -> list[tuple[int, int, int]]:
        """Partition sorted global ``rows`` into per-block index windows.

        Returns ``(block, start, stop)`` triples such that
        ``rows[start:stop]`` are exactly the rows falling in ``block``;
        blocks with no rows are omitted.
        """
        if rows.size == 0:
            return []
        edges = np.arange(1, self.n_blocks + 1) * self.block_users
        cuts = np.searchsorted(rows, edges, side="left")
        out: list[tuple[int, int, int]] = []
        start = 0
        for block, stop in enumerate(cuts):
            if stop > start:
                out.append((block, int(start), int(stop)))
            start = int(stop)
        return out
