"""User-axis sharding: partitioned interest state and parallel plane fills.

Every hot quantity in the paper's objective (Eq. 1-4 scores, per-interval
attendance mass, contributor counts) is a sum over users, so the user
dimension shards cleanly into partial aggregates that merge by addition:

- :class:`ShardPlan` -- seeded, deterministic user -> block -> shard layout.
  Accumulation *blocks* are fixed-size and independent of the shard count,
  so merged results are bit-identical for any P (float64 storage).
- :class:`ShardedInterest` -- per-block CSC or float32 dense/memmap storage
  behind the existing interest accessor protocol; values are upcast to
  float64 at the accessor boundary so accumulation stays double precision.
- :class:`ShardedEngine` -- per-block sub-engines (the existing sparse or
  vectorized kernels over block views) whose partials merge by addition in
  a fixed global block order.
- :class:`ShardExecutor` -- serial / thread / fork-process dispatch for
  per-shard work, with numpy releasing the GIL on the thread path.
"""

from repro.shard.engine import ShardedEngine, localize_delta
from repro.shard.executor import ShardExecutor
from repro.shard.interest import ShardedInterest
from repro.shard.plan import DEFAULT_BLOCK_USERS, ShardPlan

__all__ = [
    "DEFAULT_BLOCK_USERS",
    "ShardExecutor",
    "ShardPlan",
    "ShardedEngine",
    "ShardedInterest",
    "localize_delta",
]
