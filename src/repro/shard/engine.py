"""``ShardedEngine`` — per-block sub-engines whose partials merge by addition.

Every query of Eq. 1-4 is a weighted sum over users, so an engine over the
full instance factors exactly into one engine per user block::

    score(r, t) = sum_b score_b(r, t)        (block b sees only its rows)

Each block runs an unmodified :class:`~repro.core.engine.SparseEngine` or
:class:`~repro.core.engine.VectorizedEngine` over a :class:`_BlockView` —
a duck-typed window of the instance restricted to the block's user rows.
The sharded engine forwards schedule mutations and live deltas to every
block (deltas localized to the rows each block owns) and merges query
partials **in ascending global block order with a left fold**, which is
what makes results independent of the shard count and of worker
scheduling: blocks are fixed by ``block_users``; shards only decide which
worker computes which partials.

Two deliberate non-shortcuts, both load-bearing for P-independence:

- partials are never pre-reduced per shard (that would regroup the float
  additions as P changes);
- the fold starts from the first block's partial, not from ``zeros``
  (``0.0 + (-0.0)`` is ``0.0``, which would differ bitwise from a
  single-block result of ``-0.0``).
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np

from repro.core.engine import ScoreEngine, SparseEngine, VectorizedEngine
from repro.core.live import (
    CompetingAdded,
    EventAdded,
    EventInterestReplaced,
    EventRemoved,
    LiveDelta,
)
from repro.shard.executor import ShardExecutor
from repro.shard.interest import ShardedInterest
from repro.shard.plan import DEFAULT_BLOCK_USERS, ShardPlan

__all__ = ["ShardedEngine", "localize_delta"]

#: Engine kinds that may run per block (the reference oracle stays whole).
SHARDABLE_KINDS = ("sparse", "vectorized")


def localize_delta(delta: LiveDelta, lo: int, hi: int) -> LiveDelta:
    """Restrict one live delta to the user-row window ``[lo, hi)``.

    The shard router: every :class:`LiveDelta` subtype must be handled
    here (enforced by the delta-exhaustiveness lint rule), so a future
    delta type cannot silently skip shard routing.  Rows in the returned
    delta are local to the window.
    """
    if isinstance(delta, EventAdded):
        return delta.restricted(lo, hi)
    if isinstance(delta, EventRemoved):
        return delta.restricted(lo, hi)
    if isinstance(delta, EventInterestReplaced):
        return delta.restricted(lo, hi)
    if isinstance(delta, CompetingAdded):
        return delta.restricted(lo, hi)
    raise TypeError(f"unknown live delta {delta!r}")


# ----------------------------------------------------------------------
# block views: the duck-typed instance window a sub-engine consumes
# ----------------------------------------------------------------------
class _BlockInterestView:
    """Interest accessor protocol restricted to user rows ``[lo, hi)``.

    Three source modes, picked once at construction:

    - ``sharded`` — the source is a :class:`ShardedInterest` whose plan
      matches the engine's: gathers go straight to the block's own
      storage, no global state is touched;
    - ``dense`` — the source exposes a dense ``candidate`` view (dense
      ``InterestMatrix`` / dense ``LiveInterest``): columns are sliced
      views, entries are computed over block rows only;
    - ``entries`` — anything else: global column entries are localized
      with two binary searches (:func:`repro.core.interest.slice_entries`).
    """

    __slots__ = ("_source", "_block", "_lo", "_hi", "_mode")

    def __init__(self, source: Any, block: int, lo: int, hi: int) -> None:
        self._source = source
        self._block = block
        self._lo = lo
        self._hi = hi
        if isinstance(source, ShardedInterest):
            self._mode = "sharded"
        elif getattr(source, "backend", None) == "dense":
            self._mode = "dense"
        else:
            self._mode = "entries"

    # -- shape ----------------------------------------------------------
    @property
    def backend(self) -> str:
        """What the block's storage behaves like for engine cache policy.

        ``dense`` sources stay ``"dense"`` (the vectorized engine keeps
        reading zero-copy column views through live deltas); everything
        else reports ``"sparse"`` so dense-kernel engines densify their
        own block buffer once and patch it in O(delta).
        """
        return "dense" if self._mode == "dense" else "sparse"

    @property
    def n_users(self) -> int:
        return self._hi - self._lo

    @property
    def n_events(self) -> int:
        return int(self._source.n_events)

    @property
    def n_competing(self) -> int:
        return int(self._source.n_competing)

    # -- dense escape hatch (vectorized kernels) ------------------------
    @property
    def candidate(self) -> np.ndarray:
        if self._mode == "dense":
            return self._source.candidate[self._lo : self._hi]
        if self._mode == "sharded":
            return self._source.block_candidate_dense(self._block)
        dense = np.zeros((self.n_users, self.n_events))
        for event in range(self.n_events):
            rows, values = self.event_column_entries(event)
            dense[rows, event] = values
        return dense

    # -- column gather --------------------------------------------------
    def event_column_entries(self, event: int) -> tuple[np.ndarray, np.ndarray]:
        if self._mode == "sharded":
            return self._source.block_candidate_entries(self._block, event)
        if self._mode == "dense":
            return _entries_of_block(self._source.candidate, event, self._lo, self._hi)
        rows, values = self._source.event_column_entries(event)
        return _slice(rows, values, self._lo, self._hi)

    def competing_column_entries(
        self, competing: int
    ) -> tuple[np.ndarray, np.ndarray]:
        if self._mode == "sharded":
            return self._source.block_competing_entries(self._block, competing)
        if self._mode == "dense":
            return _entries_of_block(
                self._source.competing, competing, self._lo, self._hi
            )
        rows, values = self._source.competing_column_entries(competing)
        return _slice(rows, values, self._lo, self._hi)

    def competing_mass_entries(
        self, rivals: Sequence[int]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Block-local ``K_t``: per-user accumulation in rivals order.

        Matches the global ``competing_mass_entries`` restricted to the
        block's rows value for value: the per-user sums accumulate the
        same rivals in the same order.
        """
        from repro.core.interest import merge_entries

        if not len(rivals):
            return (
                np.zeros(0, dtype=np.intp),
                np.zeros(0),
            )
        parts = [self.competing_column_entries(rival) for rival in rivals]
        rows = np.concatenate([rows for rows, _ in parts])
        values = np.concatenate([values for _, values in parts])
        return merge_entries(rows, values)


def _entries_of_block(
    matrix: np.ndarray, column: int, lo: int, hi: int
) -> tuple[np.ndarray, np.ndarray]:
    window = matrix[lo:hi, column]
    rows = np.flatnonzero(window).astype(np.intp, copy=False)
    return rows, np.asarray(window[rows], dtype=float)


def _slice(
    rows: np.ndarray, values: np.ndarray, lo: int, hi: int
) -> tuple[np.ndarray, np.ndarray]:
    from repro.core.interest import slice_entries

    return slice_entries(rows, values, lo, hi)


class _BlockActivity:
    """Activity window: ``sigma`` rows ``[lo, hi)`` as a zero-copy view."""

    __slots__ = ("_source", "_lo", "_hi")

    def __init__(self, source: Any, lo: int, hi: int) -> None:
        self._source = source
        self._lo = lo
        self._hi = hi

    @property
    def matrix(self) -> np.ndarray:
        return self._source.matrix[self._lo : self._hi]


class _BlockCompetingMass:
    """``K_t`` window: dense per-interval rows ``[lo, hi)`` on demand."""

    __slots__ = ("_instance", "_lo", "_hi")

    def __init__(self, instance: Any, lo: int, hi: int) -> None:
        self._instance = instance
        self._lo = lo
        self._hi = hi

    def __getitem__(self, interval: int) -> np.ndarray:
        return self._instance.competing_mass[interval][self._lo : self._hi]


class _BlockView:
    """The instance read surface restricted to one user block.

    Everything an engine or schedule consults delegates to the source
    instance *live* (event/interval counts, competing groups), except the
    user axis, which is windowed to ``[lo, hi)``.  Duck typing is the
    same trick :class:`~repro.core.live.LiveInstance` already relies on.
    """

    __slots__ = ("_instance", "_lo", "_hi", "interest", "activity", "_mass")

    def __init__(self, instance: Any, block: int, lo: int, hi: int) -> None:
        self._instance = instance
        self._lo = lo
        self._hi = hi
        self.interest = _BlockInterestView(instance.interest, block, lo, hi)
        self.activity = _BlockActivity(instance.activity, lo, hi)
        self._mass = _BlockCompetingMass(instance, lo, hi)

    @property
    def n_users(self) -> int:
        return self._hi - self._lo

    @property
    def n_events(self) -> int:
        return int(self._instance.n_events)

    @property
    def n_intervals(self) -> int:
        return int(self._instance.n_intervals)

    @property
    def n_competing(self) -> int:
        return int(self._instance.n_competing)

    @property
    def theta(self) -> float:
        return float(self._instance.theta)

    @property
    def competing_by_interval(self) -> Any:
        return self._instance.competing_by_interval

    @property
    def competing_mass(self) -> _BlockCompetingMass:
        return self._mass


# ----------------------------------------------------------------------
# the sharded engine
# ----------------------------------------------------------------------
class ShardedEngine(ScoreEngine):
    """Score engine over P user shards of fixed accumulation blocks.

    Parameters
    ----------
    instance:
        The problem instance (immutable or live).  If its interest is a
        :class:`ShardedInterest`, the engine adopts that plan's block
        size so per-block gathers hit block storage directly.
    kind:
        Sub-engine kind per block: ``"sparse"`` (the scale path) or
        ``"vectorized"``.
    shards:
        Dispatch width P.  Affects wall-clock only, never results.
    workers:
        Executor parallelism (defaults to ``shards``).
    block_users:
        Accumulation block size (defaults to the interest plan's, or
        :data:`~repro.shard.plan.DEFAULT_BLOCK_USERS`).  Results depend
        on this value (it fixes the merge grouping) but not on P.
    executor:
        A :class:`ShardExecutor` to dispatch with; default is a thread
        executor with ``workers`` workers.  Process executors are only
        sound for *query* fan-outs (children see forked state), which is
        all the engine dispatches.
    """

    def __init__(
        self,
        instance: Any,
        *,
        kind: str = "sparse",
        shards: int = 1,
        workers: int | None = None,
        block_users: int | None = None,
        executor: ShardExecutor | None = None,
    ) -> None:
        if kind not in SHARDABLE_KINDS:
            raise ValueError(
                f"engine kind {kind!r} cannot shard; choose from {SHARDABLE_KINDS}"
            )
        interest = instance.interest
        if isinstance(interest, ShardedInterest):
            native = interest.plan
            if block_users is not None and block_users != native.block_users:
                raise ValueError(
                    f"instance interest is sharded with block_users="
                    f"{native.block_users}; cannot override with {block_users}"
                )
            plan = ShardPlan(
                n_users=native.n_users,
                n_shards=shards,
                block_users=native.block_users,
                seed=native.seed,
            )
        else:
            plan = ShardPlan(
                n_users=int(instance.n_users),
                n_shards=shards,
                block_users=block_users or DEFAULT_BLOCK_USERS,
            )
        self._plan = plan
        self._kind = kind
        self._executor = executor or ShardExecutor(
            workers=shards if workers is None else workers, kind="thread"
        )
        engine_cls = SparseEngine if kind == "sparse" else VectorizedEngine
        self._views = [
            _BlockView(instance, block, *plan.block_bounds(block))
            for block in range(plan.n_blocks)
        ]
        self._engines: list[ScoreEngine] = [
            engine_cls(view)  # type: ignore[arg-type]
            for view in self._views
        ]
        self._fanouts = 0
        self._merged_partials = 0
        super().__init__(instance)

    # ------------------------------------------------------------------
    @property
    def plan(self) -> ShardPlan:
        return self._plan

    @property
    def kind(self) -> str:
        return self._kind

    @property
    def executor(self) -> ShardExecutor:
        return self._executor

    @property
    def block_engines(self) -> tuple[ScoreEngine, ...]:
        """The per-block sub-engines, in global block order (read-only)."""
        return tuple(self._engines)

    def stats(self) -> dict[str, int]:
        """Fan-out accounting for the CI fast-path gate.

        ``fanouts`` counts parallel batch dispatches
        (:meth:`scores_for_rows` calls); ``merged_partials`` counts block
        partials folded in.  A cold plane fill must cost exactly one
        fan-out of ``n_blocks`` partials — "partials merged once".
        """
        return {
            "fanouts": self._fanouts,
            "merged_partials": self._merged_partials,
            "blocks": self._plan.n_blocks,
            "shards": self._plan.n_shards,
        }

    # ------------------------------------------------------------------
    # merge helpers: left fold in ascending global block order
    # ------------------------------------------------------------------
    def _merge_arrays(self, partials: Sequence[np.ndarray]) -> np.ndarray:
        out: np.ndarray | None = None
        for partial in partials:
            if out is None:
                out = partial  # freshly computed by the sub-engine: owned
            else:
                out += partial
        assert out is not None
        self._merged_partials += len(partials)
        return out

    def _merge_scalars(self, partials: Sequence[float]) -> float:
        out: float | None = None
        for partial in partials:
            out = partial if out is None else out + partial
        assert out is not None
        self._merged_partials += len(partials)
        return out

    def _per_block(self, query: Callable[[ScoreEngine], Any]) -> list[Any]:
        return [query(engine) for engine in self._engines]

    # ------------------------------------------------------------------
    # batched fills: the parallel fan-out
    # ------------------------------------------------------------------
    def scores_for_rows(
        self, intervals: Sequence[int], events: Sequence[int]
    ) -> np.ndarray:
        """All dirty plane rows in one parallel fan-out.

        One thunk per shard computes its blocks' partial matrices; the
        main thread folds them in ascending global block order, so the
        result is identical for any ``shards``/``workers`` and any
        completion order.
        """
        interval_list = [int(t) for t in intervals]
        event_list = [int(e) for e in events]
        if not interval_list or not event_list:
            return np.zeros((len(interval_list), len(event_list)))

        def shard_thunk(blocks: range) -> list[np.ndarray]:
            return [
                self._engines[block].scores_for_rows(interval_list, event_list)
                for block in blocks
            ]

        thunks = [
            (lambda blocks=self._plan.shard_blocks(s): shard_thunk(blocks))
            for s in range(self._plan.n_shards)
        ]
        self._fanouts += 1
        per_shard = self._executor.map(thunks)
        partials = [partial for shard in per_shard for partial in shard]
        return self._merge_arrays(partials)

    # ------------------------------------------------------------------
    # queries: merge per-block partials
    # ------------------------------------------------------------------
    def score(self, event: int, interval: int) -> float:
        # routed through the batched path so a scalar probe, a row refresh
        # and a full fill all merge identical per-block partials
        return float(self.scores_for_rows([interval], [event])[0, 0])

    def scores_for_interval(
        self, interval: int, events: Sequence[int]
    ) -> np.ndarray:
        return self.scores_for_rows([interval], events)[0]

    def scores_for_event(
        self, event: int, intervals: Sequence[int]
    ) -> np.ndarray:
        return self._merge_arrays(
            self._per_block(lambda e: e.scores_for_event(event, intervals))
        )

    def removal_losses(self, events: Sequence[int]) -> np.ndarray:
        return self._merge_arrays(
            self._per_block(lambda e: e.removal_losses(events))
        )

    def removal_loss(self, event: int) -> float:
        return float(self.removal_losses([event])[0])

    def _score_excluding(self, event: int, interval: int, excluding: int) -> float:
        return self._merge_scalars(
            self._per_block(
                lambda e: e._score_excluding(event, interval, excluding)
            )
        )

    def scores_excluding_each(
        self, event: int, interval: int, excluding: Sequence[int]
    ) -> np.ndarray:
        return self._merge_arrays(
            self._per_block(
                lambda e: e.scores_excluding_each(event, interval, excluding)
            )
        )

    def omega(self, event: int) -> float:
        return self._merge_scalars(self._per_block(lambda e: e.omega(event)))

    def interval_utility(self, interval: int) -> float:
        return self._merge_scalars(
            self._per_block(lambda e: e.interval_utility(interval))
        )

    def total_utility(self) -> float:
        # fixed interval-major order (sorted), each interval merged across
        # blocks — deterministic and P-independent
        return sum(
            self.interval_utility(interval)
            for interval in sorted(self._schedule.used_intervals())
        )

    # ------------------------------------------------------------------
    # state: schedule mutations and live deltas forward to every block
    # ------------------------------------------------------------------
    def _reset_state(self) -> None:
        for engine in self._engines:
            engine.reset()

    def _apply(self, event: int, interval: int, sign: int) -> None:
        for engine in self._engines:
            if sign > 0:
                engine.assign(event, interval)
            else:
                engine.unassign(event)

    def _localized(self, delta: LiveDelta) -> list[LiveDelta]:
        return [
            localize_delta(delta, *self._plan.block_bounds(block))
            for block in range(self._plan.n_blocks)
        ]

    def _on_event_added(self, delta: EventAdded) -> None:
        for engine, local in zip(self._engines, self._localized(delta)):
            engine.apply_delta(local)

    def _on_event_removed(self, delta: EventRemoved) -> None:
        # no user payload: every block ingests the same removal (each
        # renumbers its own schedule mirror)
        for engine in self._engines:
            engine.apply_delta(delta)

    def _on_event_interest_replaced(self, delta: EventInterestReplaced) -> None:
        for engine, local in zip(self._engines, self._localized(delta)):
            engine.apply_delta(local)

    def _on_competing_added(self, delta: CompetingAdded) -> None:
        for engine, local in zip(self._engines, self._localized(delta)):
            engine.apply_delta(local)

    # ------------------------------------------------------------------
    # geometry / cloning
    # ------------------------------------------------------------------
    def score_geometry(self) -> object:
        """Block layout + per-block geometries (chunk lengths move with
        live event counts for vectorized sub-engines)."""
        return (
            "sharded",
            self._kind,
            self._plan.block_users,
            self._plan.n_blocks,
            tuple(engine.score_geometry() for engine in self._engines),
        )

    def _clone_shell(self) -> "ShardedEngine":
        other = object.__new__(ShardedEngine)
        other._plan = self._plan
        other._kind = self._kind
        other._executor = self._executor
        other._views = self._views
        other._engines = [engine.clone() for engine in self._engines]
        other._fanouts = 0
        other._merged_partials = 0
        ScoreEngine.__init__(other, self._instance)
        return other
