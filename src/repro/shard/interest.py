"""``ShardedInterest`` — per-block storage of ``mu`` behind the interest protocol.

Rows (users) are partitioned by a :class:`~repro.shard.plan.ShardPlan` into
fixed-size blocks; each block owns its own candidate/competing storage:

- ``"csc"``    — scipy CSC, float64 data (bit-identical to unsharded)
- ``"csc32"``  — scipy CSC, float32 data (half the value memory)
- ``"dense32"``  — float32 column-major ndarray per block
- ``"memmap32"`` — float32 column-major ``.npy`` memmap per block; the only
  storage that lets a 10^6-user instance live mostly on disk and lets
  fork-based workers read blocks copy-on-write.

float32 is a *storage* concession only: every accessor upcasts values to
float64 at the gather boundary, so score/mass accumulation downstream stays
double precision (the dtype-discipline rule enforces this for the rest of
the shard subsystem — this module is its one sanctioned exemption).

The global accessor protocol (``event_column_entries`` & co.) matches
:class:`repro.core.interest.InterestMatrix`, so instances, engines, live
views and serializers consume a sharded matrix unchanged; the additional
``block_*`` accessors are what :class:`repro.shard.engine.ShardedEngine`'s
per-block sub-engines gather from without ever touching global state.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Sequence

import numpy as np

from repro.core.errors import InstanceValidationError
from repro.core.interest import InterestMatrix, merge_entries, slice_entries
from repro.shard.plan import ShardPlan

try:  # scipy is an optional dependency (the "sparse" extra)
    from scipy import sparse as _sp
except ImportError:  # pragma: no cover - exercised only without scipy
    _sp = None

__all__ = ["SHARD_STORAGES", "ShardedInterest"]

#: Supported per-block storage kinds.
SHARD_STORAGES = ("csc", "csc32", "dense32", "memmap32")

_EMPTY_ROWS = np.zeros(0, dtype=np.intp)
_EMPTY_VALUES = np.zeros(0)


def _require_scipy() -> None:
    if _sp is None:  # pragma: no cover - exercised only without scipy
        raise ImportError(
            "sharded interest requires scipy for CSC block storage; install "
            "the 'sparse' extra (pip install ses-repro[sparse])"
        )


def _is_sparse(block: Any) -> bool:
    return _sp is not None and _sp.issparse(block)


def _check_block(block: Any, name: str) -> None:
    data = block.data if _is_sparse(block) else block
    data = np.asarray(data)
    if data.size == 0:
        return
    if np.isnan(data).any():
        raise InstanceValidationError(f"{name} contains NaN entries")
    lo, hi = float(data.min()), float(data.max())
    if lo < 0.0 or hi > 1.0:
        raise InstanceValidationError(
            f"{name} entries must lie in [0, 1]; observed range [{lo}, {hi}]"
        )


class ShardedInterest:
    """Immutable, block-partitioned storage of ``mu``.

    Build with :meth:`from_interest` (reshard an existing matrix) or
    :meth:`from_blocks` (per-block construction that never materializes a
    global matrix — the 10^6-user synthesis path).
    """

    __slots__ = (
        "_plan",
        "_storage",
        "_candidate_blocks",
        "_competing_blocks",
        "_n_events",
        "_n_competing",
    )

    def __init__(
        self,
        plan: ShardPlan,
        candidate_blocks: Sequence[Any],
        competing_blocks: Sequence[Any],
        storage: str,
        *,
        validate: bool = True,
    ) -> None:
        if storage not in SHARD_STORAGES:
            raise ValueError(
                f"unknown shard storage {storage!r}; choose from {SHARD_STORAGES}"
            )
        if len(candidate_blocks) != plan.n_blocks:
            raise InstanceValidationError(
                f"expected {plan.n_blocks} candidate blocks, "
                f"got {len(candidate_blocks)}"
            )
        if len(competing_blocks) != plan.n_blocks:
            raise InstanceValidationError(
                f"expected {plan.n_blocks} competing blocks, "
                f"got {len(competing_blocks)}"
            )
        n_events = int(candidate_blocks[0].shape[1])
        n_competing = int(competing_blocks[0].shape[1])
        for block_index in range(plan.n_blocks):
            lo, hi = plan.block_bounds(block_index)
            for name, blocks, width in (
                ("candidate", candidate_blocks, n_events),
                ("competing", competing_blocks, n_competing),
            ):
                block = blocks[block_index]
                if block.shape != (hi - lo, width):
                    raise InstanceValidationError(
                        f"{name} block {block_index} has shape {block.shape}; "
                        f"expected {(hi - lo, width)}"
                    )
                if validate:
                    _check_block(block, f"{name} block {block_index}")
        self._plan = plan
        self._storage = storage
        self._candidate_blocks = tuple(candidate_blocks)
        self._competing_blocks = tuple(competing_blocks)
        self._n_events = n_events
        self._n_competing = n_competing

    # ------------------------------------------------------------------
    # shape / identity
    # ------------------------------------------------------------------
    @property
    def backend(self) -> str:
        """Always ``"sharded"`` — distinct from the flat backends."""
        return "sharded"

    @property
    def storage(self) -> str:
        """Per-block storage kind (one of :data:`SHARD_STORAGES`)."""
        return self._storage

    @property
    def plan(self) -> ShardPlan:
        return self._plan

    @property
    def n_users(self) -> int:
        return self._plan.n_users

    @property
    def n_events(self) -> int:
        return self._n_events

    @property
    def n_competing(self) -> int:
        return self._n_competing

    # ------------------------------------------------------------------
    # per-block accessors (the sharded-engine gather surface)
    # ------------------------------------------------------------------
    def block_candidate_entries(
        self, block: int, event: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Nonzero ``(local_rows, float64 values)`` of one candidate column."""
        return self._block_entries(self._candidate_blocks[block], event)

    def block_competing_entries(
        self, block: int, competing: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Nonzero ``(local_rows, float64 values)`` of one competing column."""
        return self._block_entries(self._competing_blocks[block], competing)

    def candidate_block(self, block: int) -> Any:
        """Raw candidate storage of one block (CSC matrix or float32 array)."""
        return self._candidate_blocks[block]

    def competing_block(self, block: int) -> Any:
        """Raw competing storage of one block (CSC matrix or float32 array)."""
        return self._competing_blocks[block]

    def block_candidate_dense(self, block: int) -> np.ndarray:
        """One block's candidate matrix as dense float64 (vectorized kernels)."""
        blk = self._candidate_blocks[block]
        if _is_sparse(blk):
            return np.asarray(blk.toarray(), dtype=float)
        return np.asarray(blk, dtype=float)

    @staticmethod
    def _block_entries(block: Any, column: int) -> tuple[np.ndarray, np.ndarray]:
        if _is_sparse(block):
            start, stop = block.indptr[column], block.indptr[column + 1]
            rows = block.indices[start:stop].astype(np.intp, copy=False)
            values = block.data[start:stop]
        else:
            col = block[:, column]
            rows = np.flatnonzero(col).astype(np.intp, copy=False)
            values = col[rows]
        return rows, np.asarray(values, dtype=float)

    # ------------------------------------------------------------------
    # global accessor protocol (InterestMatrix-compatible)
    # ------------------------------------------------------------------
    def event_column_entries(self, event: int) -> tuple[np.ndarray, np.ndarray]:
        return self._global_entries(self._candidate_blocks, event)

    def competing_column_entries(
        self, competing: int
    ) -> tuple[np.ndarray, np.ndarray]:
        return self._global_entries(self._competing_blocks, competing)

    def _global_entries(
        self, blocks: tuple[Any, ...], column: int
    ) -> tuple[np.ndarray, np.ndarray]:
        row_parts: list[np.ndarray] = []
        value_parts: list[np.ndarray] = []
        for block_index, block in enumerate(blocks):
            rows, values = self._block_entries(block, column)
            if rows.size:
                lo, _ = self._plan.block_bounds(block_index)
                row_parts.append(rows + lo)
                value_parts.append(values)
        if not row_parts:
            return _EMPTY_ROWS, _EMPTY_VALUES
        return np.concatenate(row_parts), np.concatenate(value_parts)

    def competing_mass_entries(
        self, rivals: Sequence[int]
    ) -> tuple[np.ndarray, np.ndarray]:
        """``K_t`` as a sparse vector (see ``InterestMatrix``); rivals order."""
        if not len(rivals):
            return _EMPTY_ROWS, _EMPTY_VALUES
        parts = [self.competing_column_entries(rival) for rival in rivals]
        rows = np.concatenate([rows for rows, _ in parts])
        values = np.concatenate([values for _, values in parts])
        return merge_entries(rows, values)

    def event_column(self, event: int) -> np.ndarray:
        return self._dense_column(self._candidate_blocks, event)

    def competing_column(self, competing: int) -> np.ndarray:
        return self._dense_column(self._competing_blocks, competing)

    def _dense_column(self, blocks: tuple[Any, ...], column: int) -> np.ndarray:
        out = np.zeros(self.n_users)
        for block_index, block in enumerate(blocks):
            lo, hi = self._plan.block_bounds(block_index)
            if _is_sparse(block):
                rows, values = self._block_entries(block, column)
                out[rows + lo] = values
            else:
                out[lo:hi] = block[:, column]
        return out

    def mu_event(self, user: int, event: int) -> float:
        block = self._plan.block_of_user(user)
        lo, _ = self._plan.block_bounds(block)
        return float(self._candidate_blocks[block][user - lo, event])

    def mu_competing(self, user: int, competing: int) -> float:
        block = self._plan.block_of_user(user)
        lo, _ = self._plan.block_bounds(block)
        return float(self._competing_blocks[block][user - lo, competing])

    # ------------------------------------------------------------------
    # dense / sparse escape hatches (serialization, parity tests)
    # ------------------------------------------------------------------
    @property
    def candidate(self) -> np.ndarray:
        """Dense float64 candidate matrix — materializes; not a hot path."""
        return self._dense_matrix(self._candidate_blocks, self._n_events)

    @property
    def competing(self) -> np.ndarray:
        return self._dense_matrix(self._competing_blocks, self._n_competing)

    def _dense_matrix(self, blocks: tuple[Any, ...], width: int) -> np.ndarray:
        out = np.empty((self.n_users, width))
        for block_index, block in enumerate(blocks):
            lo, hi = self._plan.block_bounds(block_index)
            out[lo:hi] = block.toarray() if _is_sparse(block) else block
        return out

    @property
    def candidate_sparse(self) -> Any:
        return self._sparse_matrix(self._candidate_blocks, self._n_events)

    @property
    def competing_sparse(self) -> Any:
        return self._sparse_matrix(self._competing_blocks, self._n_competing)

    def _sparse_matrix(self, blocks: tuple[Any, ...], width: int) -> Any:
        _require_scipy()
        stacked = _sp.vstack(
            [
                blk if _is_sparse(blk) else _sp.csc_matrix(np.asarray(blk, dtype=float))
                for blk in blocks
            ],
            format="csc",
        ).astype(float)
        stacked.sort_indices()
        return stacked

    def candidate_coo(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Canonical ``(rows, cols, values)`` — column-major, zeros dropped."""
        return InterestMatrix._coo(self.candidate_sparse)

    def competing_coo(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        return InterestMatrix._coo(self.competing_sparse)

    # ------------------------------------------------------------------
    # derived statistics
    # ------------------------------------------------------------------
    def nnz_candidate(self) -> int:
        total = 0
        for block in self._candidate_blocks:
            total += int(block.nnz) if _is_sparse(block) else int(
                np.count_nonzero(block)
            )
        return total

    def sparsity(self) -> float:
        size = self.n_users * self.n_events
        if size == 0:
            return 1.0
        return float((size - self.nnz_candidate()) / size)

    def mean_positive_interest(self) -> float:
        total, count = 0.0, 0
        for block in self._candidate_blocks:
            data = np.asarray(block.data if _is_sparse(block) else block)
            positive = data[data > 0]
            total += float(positive.sum(dtype=np.float64))
            count += int(positive.size)
        return total / count if count else 0.0

    # ------------------------------------------------------------------
    # constructors / conversion
    # ------------------------------------------------------------------
    @classmethod
    def from_interest(
        cls,
        interest: Any,
        plan: ShardPlan,
        storage: str = "csc",
        directory: str | Path | None = None,
    ) -> "ShardedInterest":
        """Reshard an existing interest matrix (or any accessor-protocol duck).

        ``memmap32`` requires ``directory`` — block files are written there
        as ``.npy`` and mapped back read-only.
        """
        if interest.n_users != plan.n_users:
            raise InstanceValidationError(
                f"plan covers {plan.n_users} users but interest has "
                f"{interest.n_users}"
            )
        candidate_blocks = cls._slice_blocks(
            interest, plan, interest.n_events, competing=False
        )
        competing_blocks = cls._slice_blocks(
            interest, plan, interest.n_competing, competing=True
        )
        return cls.from_blocks(
            plan, candidate_blocks, competing_blocks, storage, directory=directory
        )

    @staticmethod
    def _slice_blocks(
        interest: Any, plan: ShardPlan, width: int, *, competing: bool
    ) -> list[Any]:
        _require_scipy()
        source = getattr(
            interest, "competing_sparse" if competing else "candidate_sparse", None
        )
        if source is not None:
            blocks = []
            for block_index in range(plan.n_blocks):
                lo, hi = plan.block_bounds(block_index)
                blk = _sp.csc_matrix(source[lo:hi])
                blk.sort_indices()
                blocks.append(blk)
            return blocks
        # Generic duck path: gather every column's entries once, localize.
        entries_of = (
            interest.competing_column_entries
            if competing
            else interest.event_column_entries
        )
        columns = [entries_of(column) for column in range(width)]
        blocks = []
        for block_index in range(plan.n_blocks):
            lo, hi = plan.block_bounds(block_index)
            rows_parts, value_parts, indptr = [], [], [0]
            for rows, values in columns:
                local, vals = slice_entries(rows, values, lo, hi)
                rows_parts.append(local)
                value_parts.append(vals)
                indptr.append(indptr[-1] + local.size)
            blocks.append(
                _sp.csc_matrix(
                    (
                        np.concatenate(value_parts) if value_parts else _EMPTY_VALUES,
                        np.concatenate(rows_parts) if rows_parts else _EMPTY_ROWS,
                        np.asarray(indptr),
                    ),
                    shape=(hi - lo, width),
                )
            )
        return blocks

    @classmethod
    def from_blocks(
        cls,
        plan: ShardPlan,
        candidate_blocks: Sequence[Any],
        competing_blocks: Sequence[Any],
        storage: str = "csc",
        directory: str | Path | None = None,
    ) -> "ShardedInterest":
        """Build from per-block matrices (scipy sparse or dense arrays)."""
        if storage not in SHARD_STORAGES:
            raise ValueError(
                f"unknown shard storage {storage!r}; choose from {SHARD_STORAGES}"
            )
        candidate = [
            cls._coerce_block(blk, storage, directory, "candidate", i)
            for i, blk in enumerate(candidate_blocks)
        ]
        competing = [
            cls._coerce_block(blk, storage, directory, "competing", i)
            for i, blk in enumerate(competing_blocks)
        ]
        return cls(plan, candidate, competing, storage)

    @staticmethod
    def _coerce_block(
        block: Any,
        storage: str,
        directory: str | Path | None,
        name: str,
        index: int,
    ) -> Any:
        if storage in ("csc", "csc32"):
            _require_scipy()
            dtype = np.float64 if storage == "csc" else np.float32
            csc = _sp.csc_matrix(block, dtype=dtype, copy=True)
            csc.sum_duplicates()
            csc.eliminate_zeros()
            csc.sort_indices()
            return csc
        dense = (
            block.toarray() if _is_sparse(block) else np.asarray(block)
        ).astype(np.float32)
        dense = np.asfortranarray(dense)
        if storage == "dense32":
            dense.setflags(write=False)
            return dense
        # memmap32: persist as .npy and map back read-only
        if directory is None:
            raise ValueError("storage='memmap32' requires a directory")
        path = Path(directory)
        path.mkdir(parents=True, exist_ok=True)
        file = path / f"{name}_block{index:05d}.npy"
        np.save(file, dense)
        return np.load(file, mmap_mode="r")

    def with_storage(
        self, storage: str, directory: str | Path | None = None
    ) -> "ShardedInterest":
        """This matrix re-encoded with a different block storage."""
        if storage == self._storage:
            return self
        return ShardedInterest.from_blocks(
            self._plan,
            self._candidate_blocks,
            self._competing_blocks,
            storage,
            directory=directory,
        )

    def to_interest(self, backend: str = "sparse") -> InterestMatrix:
        """Collapse to a flat :class:`InterestMatrix` (parity tests)."""
        if backend == "sparse":
            return InterestMatrix.from_scipy(
                self.candidate_sparse, self.competing_sparse
            )
        return InterestMatrix.from_arrays(
            self.candidate, self.competing, backend="dense"
        )

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedInterest(users={self.n_users}, events={self.n_events}, "
            f"competing={self.n_competing}, blocks={self._plan.n_blocks}, "
            f"storage={self._storage!r})"
        )
