"""Dispatch per-shard work across a ``concurrent.futures`` pool.

Three kinds:

- ``"serial"`` -- run thunks inline (also the automatic choice for
  ``workers <= 1``).  The reference against which the parallel kinds are
  differential-tested.
- ``"thread"`` -- a shared ``ThreadPoolExecutor``; numpy kernels release
  the GIL so per-block fills overlap on real cores.  Pools are shared
  process-wide per worker count, so engines rebuilt on every pool
  generation (PR 7's ``PlanePool`` templates) do not leak threads.
- ``"process"`` -- a fork-based ``ProcessPoolExecutor`` for memmap-backed
  blocks: children inherit the task list and the mapped pages
  copy-on-write, so nothing but the result arrays is pickled.  Falls back
  to threads where fork is unavailable.  A worker that dies abruptly
  (OOM-killed, segfault, ``os._exit``) surfaces as a typed
  :class:`~repro.core.errors.ShardWorkerError` naming the thunk it was
  running — never a silent hang.

Requested ``workers`` are clamped to the machine's CPU count (with a
:class:`RuntimeWarning`): oversubscribed shard fills only add contention.

Fault injection (:class:`~repro.resilience.faults.FaultPlan`) hooks in
here: each dispatched thunk draws once against the plan — *serially,
before fan-out*, so the fault sequence is independent of thread
scheduling — and injected crashes/IO errors are retried under the
armed :class:`~repro.resilience.faults.RetryPolicy` with deterministic
seeded backoff.  A thunk that keeps failing past ``fallback_after``
attempts runs on the serial fallback path with injection disabled, which
is why a fault-injected map always converges to the fault-free result
(the resilience benchmark's bitwise gate).  Real exceptions are never
retried — retries exist for injected faults and the flaky
infrastructure they model, not for deterministic bugs.

Merging never happens here: executors preserve submission order and hand
the per-block partials back to the caller, which folds them in global
block order (the P-independence contract lives in the caller).
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
import warnings
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.core.errors import InjectedFault, ShardWorkerError

if TYPE_CHECKING:
    from repro.resilience.faults import FaultInjector, FaultPlan, RetryPolicy

Thunk = Callable[[], Any]

EXECUTOR_KINDS = ("serial", "thread", "process")

_POOL_LOCK = threading.Lock()
_THREAD_POOLS: dict[int, ThreadPoolExecutor] = {}

# Fork-based dispatch publishes the thunks through a module global so the
# children inherit them via fork instead of pickling closures.  Guarded by
# _FORK_LOCK: one forked batch at a time per process.
_FORK_TASKS: Sequence[Thunk] | None = None
_FORK_LOCK = threading.Lock()


def _available_cpus() -> int:
    """CPU budget ``workers`` clamps to (monkeypatchable in tests)."""
    return os.cpu_count() or 1


def _shared_thread_pool(workers: int) -> ThreadPoolExecutor:
    with _POOL_LOCK:
        pool = _THREAD_POOLS.get(workers)
        if pool is None:
            pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="ses-shard"
            )
            _THREAD_POOLS[workers] = pool
        return pool


def _call(thunk: Thunk) -> Any:
    return thunk()


def _call_fork_task(index: int) -> Any:
    tasks = _FORK_TASKS
    assert tasks is not None, "fork task list not published"
    return tasks[index]()


def fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


class ShardExecutor:
    """Order-preserving map over shard thunks.

    Parameters
    ----------
    workers:
        Parallelism; clamped to :func:`os.cpu_count` with a warning.
        ``workers=1`` (or ``None``) collapses to the serial kind.
    kind:
        ``"serial"`` / ``"thread"`` / ``"process"``.
    fault_plan:
        Optional :class:`~repro.resilience.faults.FaultPlan`; arms
        deterministic fault injection on every dispatched thunk.
    retry:
        :class:`~repro.resilience.faults.RetryPolicy` governing injected
        faults (defaults to ``RetryPolicy()`` when a plan is armed).
    """

    __slots__ = (
        "_kind", "_workers", "_injector", "_retry",
        "_retries", "_fallbacks", "_stats_lock",
    )

    def __init__(
        self,
        workers: int | None = None,
        kind: str = "thread",
        *,
        fault_plan: "FaultPlan | None" = None,
        retry: "RetryPolicy | None" = None,
    ):
        if kind not in EXECUTOR_KINDS:
            raise ValueError(
                f"unknown executor kind {kind!r}; expected one of {EXECUTOR_KINDS}"
            )
        workers = 1 if workers is None else int(workers)
        if workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        available = _available_cpus()
        if workers > available:
            warnings.warn(
                f"requested {workers} shard workers but only {available} "
                f"CPU(s) are available; clamping to {available}",
                RuntimeWarning,
                stacklevel=2,
            )
            workers = available
        if kind == "process" and not fork_available():  # pragma: no cover
            kind = "thread"
        if workers == 1:
            kind = "serial"
        self._kind = kind
        self._workers = workers
        self._injector: "FaultInjector | None" = None
        self._retry: "RetryPolicy | None" = None
        if fault_plan is not None or retry is not None:
            from repro.resilience.faults import RetryPolicy as _RetryPolicy

            if fault_plan is not None:
                self._injector = fault_plan.injector()
            self._retry = retry if retry is not None else _RetryPolicy()
        self._retries = 0
        self._fallbacks = 0
        self._stats_lock = threading.Lock()

    @property
    def kind(self) -> str:
        return self._kind

    @property
    def workers(self) -> int:
        return self._workers

    def stats(self) -> dict[str, Any]:
        """Fault/retry/fallback counters (all zero without a plan)."""
        with self._stats_lock:
            return {
                "faults": (
                    {} if self._injector is None else self._injector.counts()
                ),
                "retries": self._retries,
                "fallbacks": self._fallbacks,
            }

    def map(self, thunks: Sequence[Thunk]) -> list[Any]:
        """Run ``thunks`` and return their results in submission order."""
        if self._injector is not None:
            return self._map_faulted(list(thunks))
        return self._dispatch(thunks)

    def _dispatch(self, thunks: Sequence[Thunk]) -> list[Any]:
        if self._kind == "serial" or len(thunks) <= 1:
            return [thunk() for thunk in thunks]
        if self._kind == "thread":
            pool = _shared_thread_pool(self._workers)
            return list(pool.map(_call, thunks))
        return self._map_forked(thunks)

    # -- fault-injected dispatch -----------------------------------------
    def _map_faulted(self, thunks: list[Thunk]) -> list[Any]:
        """Dispatch with per-thunk fault draws, retries, serial fallback."""
        assert self._injector is not None and self._retry is not None
        injector, retry = self._injector, self._retry
        site = f"shard.map:{self._kind}"
        stall = injector.plan.stall_seconds
        results: list[Any] = [None] * len(thunks)
        pending = list(range(len(thunks)))
        failures = [0] * len(thunks)
        attempt = 0
        while pending:
            exhausted = attempt > retry.max_retries
            fallback = [
                index for index in pending
                if exhausted or failures[index] >= retry.fallback_after
            ]
            if fallback:
                # the fallback path runs inline with injection disabled:
                # fault sites cover the parallel dispatch only, which is
                # what guarantees convergence to the fault-free result
                for index in fallback:
                    results[index] = thunks[index]()
                with self._stats_lock:
                    self._fallbacks += len(fallback)
                pending = [i for i in pending if i not in set(fallback)]
            if not pending:
                break
            if attempt > 0:
                # one deterministic backoff per retry round, keyed by the
                # round's first pending thunk
                time.sleep(retry.delay(attempt - 1, key=pending[0]))
                with self._stats_lock:
                    self._retries += len(pending)
            # draw all faults serially BEFORE fanning out, so the fault
            # sequence never depends on worker scheduling
            draws = {index: injector.draw_executor(site) for index in pending}
            outcomes = self._dispatch(
                [self._guarded(thunks[i], draws[i], site, stall) for i in pending]
            )
            still_pending = []
            for index, (ok, value) in zip(pending, outcomes):
                if ok:
                    results[index] = value
                else:
                    failures[index] += 1
                    still_pending.append(index)
            pending = still_pending
            attempt += 1
        return results

    @staticmethod
    def _guarded(
        thunk: Thunk, fault: str | None, site: str, stall: float
    ) -> Thunk:
        """Wrap one thunk with its pre-drawn fault; returns (ok, value)."""
        def run() -> tuple[bool, Any]:
            if fault == "worker_stall":
                time.sleep(stall)
            elif fault is not None:
                return False, InjectedFault(site, fault)
            return True, thunk()

        return run

    def _map_forked(self, thunks: Sequence[Thunk]) -> list[Any]:
        global _FORK_TASKS
        ctx = multiprocessing.get_context("fork")
        with _FORK_LOCK:
            _FORK_TASKS = thunks
            try:
                with ProcessPoolExecutor(
                    max_workers=min(self._workers, len(thunks)),
                    mp_context=ctx,
                ) as pool:
                    futures = [
                        pool.submit(_call_fork_task, index)
                        for index in range(len(thunks))
                    ]
                    results = []
                    for index, future in enumerate(futures):
                        try:
                            results.append(future.result())
                        except BrokenProcessPool as error:
                            # every in-flight future raises once the pool
                            # breaks; the first one names the earliest
                            # thunk whose result was lost
                            raise ShardWorkerError(
                                f"shard worker died before completing thunk "
                                f"{index} of {len(thunks)} (abrupt process "
                                f"exit — OOM kill, segfault or os._exit)"
                            ) from error
                    return results
            finally:
                _FORK_TASKS = None

    def __repr__(self) -> str:
        return f"ShardExecutor(kind={self._kind!r}, workers={self._workers})"
