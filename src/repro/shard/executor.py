"""Dispatch per-shard work across a ``concurrent.futures`` pool.

Three kinds:

- ``"serial"`` -- run thunks inline (also the automatic choice for
  ``workers <= 1``).  The reference against which the parallel kinds are
  differential-tested.
- ``"thread"`` -- a shared ``ThreadPoolExecutor``; numpy kernels release
  the GIL so per-block fills overlap on real cores.  Pools are shared
  process-wide per worker count, so engines rebuilt on every pool
  generation (PR 7's ``PlanePool`` templates) do not leak threads.
- ``"process"`` -- a fork-based ``multiprocessing`` pool for memmap-backed
  blocks: children inherit the task list and the mapped pages
  copy-on-write, so nothing but the result arrays is pickled.  Falls back
  to threads where fork is unavailable.

Merging never happens here: executors preserve submission order and hand
the per-block partials back to the caller, which folds them in global
block order (the P-independence contract lives in the caller).
"""

from __future__ import annotations

import multiprocessing
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Sequence

Thunk = Callable[[], Any]

EXECUTOR_KINDS = ("serial", "thread", "process")

_POOL_LOCK = threading.Lock()
_THREAD_POOLS: dict[int, ThreadPoolExecutor] = {}

# Fork-based dispatch publishes the thunks through a module global so the
# children inherit them via fork instead of pickling closures.  Guarded by
# _FORK_LOCK: one forked batch at a time per process.
_FORK_TASKS: Sequence[Thunk] | None = None
_FORK_LOCK = threading.Lock()


def _shared_thread_pool(workers: int) -> ThreadPoolExecutor:
    with _POOL_LOCK:
        pool = _THREAD_POOLS.get(workers)
        if pool is None:
            pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="ses-shard"
            )
            _THREAD_POOLS[workers] = pool
        return pool


def _call(thunk: Thunk) -> Any:
    return thunk()


def _call_fork_task(index: int) -> Any:
    tasks = _FORK_TASKS
    assert tasks is not None, "fork task list not published"
    return tasks[index]()


def fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


class ShardExecutor:
    """Order-preserving map over shard thunks."""

    __slots__ = ("_kind", "_workers")

    def __init__(self, workers: int | None = None, kind: str = "thread"):
        if kind not in EXECUTOR_KINDS:
            raise ValueError(
                f"unknown executor kind {kind!r}; expected one of {EXECUTOR_KINDS}"
            )
        workers = 1 if workers is None else int(workers)
        if workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        if kind == "process" and not fork_available():  # pragma: no cover
            kind = "thread"
        if workers == 1:
            kind = "serial"
        self._kind = kind
        self._workers = workers

    @property
    def kind(self) -> str:
        return self._kind

    @property
    def workers(self) -> int:
        return self._workers

    def map(self, thunks: Sequence[Thunk]) -> list[Any]:
        """Run ``thunks`` and return their results in submission order."""
        if self._kind == "serial" or len(thunks) <= 1:
            return [thunk() for thunk in thunks]
        if self._kind == "thread":
            pool = _shared_thread_pool(self._workers)
            return list(pool.map(_call, thunks))
        return self._map_forked(thunks)

    def _map_forked(self, thunks: Sequence[Thunk]) -> list[Any]:
        global _FORK_TASKS
        ctx = multiprocessing.get_context("fork")
        with _FORK_LOCK:
            _FORK_TASKS = thunks
            try:
                with ctx.Pool(processes=min(self._workers, len(thunks))) as pool:
                    return pool.map(_call_fork_task, range(len(thunks)))
            finally:
                _FORK_TASKS = None

    def __repr__(self) -> str:
        return f"ShardExecutor(kind={self._kind!r}, workers={self._workers})"
