"""Organizer locks: pin/forbid constraints over (interval, event) cells.

Real schedulers negotiate: the organizer looks at a draft, pins the
assignments that are already agreed ("the keynote stays in slot 2") and
forbids the cells that are politically or physically impossible ("no
concert in the morning slot"), then asks for a re-solve around those
decisions.  :class:`LockSet` is that contract — a frozen, hashable value
threaded through ``Scheduler.solve(..., locks=)`` for every registry
solver and through :class:`~repro.algorithms.incremental.IncrementalScheduler`
for the streaming tier.

Semantics
---------
* ``pin(interval, event)`` — the final schedule **must** contain exactly
  this assignment.  Pins count toward the budget ``k``.
* ``forbid(interval, event)`` — the final schedule **must not** place
  ``event`` at ``interval``.  A forbidden cell only removes one option;
  the event may still land anywhere else.

An empty lock set (or ``locks=None``) binds nothing, and the solvers
guarantee the result is bit-identical to an unlocked solve — the lock
differential suite in ``tests/interactive`` enforces it.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field
from typing import Any

from repro.core.errors import LockError
from repro.core.instance import SESInstance
from repro.core.schedule import Assignment, Schedule

__all__ = ["LockSet", "PinProbe", "LockReport"]


@dataclass(frozen=True)
class PinProbe:
    """Dry-run verdict for one pin, in canonical (sorted) pin order.

    ``status`` is one of ``"ok"``, ``"out-of-range"``,
    ``"location-conflict"`` (an earlier pin holds the same location in the
    same interval) or ``"over-capacity"`` (the interval's resource budget
    is exhausted by earlier pins).
    """

    interval: int
    event: int
    status: str
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass(frozen=True)
class LockReport:
    """:meth:`LockSet.explain` output — why a lock set is (in)feasible.

    ``feasible`` means every pin commits in rehearsal order, no forbid is
    out of range, and the pin count fits the budget ``k`` (when given).
    Infeasibility here is *definitive* for pins — they are mandatory — so
    a CLI can refuse a solve up front instead of surfacing a
    :class:`~repro.core.errors.LockError` from deep inside a solver.
    """

    probes: tuple[PinProbe, ...]
    forbids_out_of_range: tuple[tuple[int, int], ...]
    k: int | None = None

    @property
    def feasible(self) -> bool:
        return (
            all(probe.ok for probe in self.probes)
            and not self.forbids_out_of_range
            and (self.k is None or len(self.probes) <= self.k)
        )

    def describe(self) -> str:
        """Multi-line human-readable report (one line per pin)."""
        lines = []
        for probe in self.probes:
            mark = "ok" if probe.ok else probe.status
            line = f"pin e{probe.event}@t{probe.interval}: {mark}"
            if probe.detail:
                line += f" ({probe.detail})"
            lines.append(line)
        for interval, event in self.forbids_out_of_range:
            lines.append(f"forbid e{event}@t{interval}: out-of-range")
        if self.k is not None and len(self.probes) > self.k:
            lines.append(
                f"budget: {len(self.probes)} pins exceed k={self.k}"
            )
        lines.append(f"verdict: {'feasible' if self.feasible else 'infeasible'}")
        return "\n".join(lines)


def _as_cell(value: Any, what: str) -> tuple[int, int]:
    """Coerce one ``(interval, event)`` pair, rejecting junk early."""
    try:
        interval, event = value
    except (TypeError, ValueError) as exc:
        raise LockError(f"{what} must be an (interval, event) pair, got {value!r}") from exc
    if not isinstance(interval, int) or not isinstance(event, int):
        raise LockError(
            f"{what} indices must be integers, got ({interval!r}, {event!r})"
        )
    if interval < 0 or event < 0:
        raise LockError(
            f"{what} indices must be non-negative, got ({interval}, {event})"
        )
    return (interval, event)


@dataclass(frozen=True)
class LockSet:
    """A frozen set of organizer pin/forbid constraints.

    Both fields hold ``(interval, event)`` cells — the same axis order as
    the :class:`~repro.core.scoreplane.ScorePlane` matrix.  Construction
    canonicalizes: pins are sorted and deduplicated, an event pinned to
    two different intervals or a pin that is also forbidden raises
    :class:`~repro.core.errors.LockError` immediately, so any reachable
    ``LockSet`` is internally consistent.

    Build incrementally with the chainable :meth:`pin` / :meth:`forbid`::

        locks = LockSet().pin(2, 7).forbid(0, 3).forbid(1, 3)
    """

    #: Sorted, deduplicated ``(interval, event)`` cells that must appear.
    pins: tuple[tuple[int, int], ...] = ()
    #: ``(interval, event)`` cells that must never appear.
    forbids: frozenset[tuple[int, int]] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        pins = tuple(sorted({_as_cell(pin, "pin") for pin in self.pins}))
        forbids = frozenset(_as_cell(cell, "forbid") for cell in self.forbids)
        by_event: dict[int, int] = {}
        for interval, event in pins:
            if event in by_event and by_event[event] != interval:
                raise LockError(
                    f"event {event} is pinned to both interval "
                    f"{by_event[event]} and interval {interval}"
                )
            by_event[event] = interval
        conflicts = sorted(set(pins) & forbids)
        if conflicts:
            raise LockError(
                f"cells are both pinned and forbidden: {conflicts}"
            )
        object.__setattr__(self, "pins", pins)
        object.__setattr__(self, "forbids", forbids)

    # ------------------------------------------------------------------
    # chainable builders
    # ------------------------------------------------------------------
    def pin(self, interval: int, event: int) -> "LockSet":
        """A new lock set that additionally pins ``event`` at ``interval``."""
        return LockSet(pins=self.pins + ((interval, event),), forbids=self.forbids)

    def forbid(self, interval: int, event: int) -> "LockSet":
        """A new lock set that additionally forbids the cell."""
        return LockSet(
            pins=self.pins, forbids=self.forbids | {(interval, event)}
        )

    # ------------------------------------------------------------------
    # probes
    # ------------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        return not self.pins and not self.forbids

    @property
    def pinned_events(self) -> frozenset[int]:
        return frozenset(event for _, event in self.pins)

    def pin_mapping(self) -> dict[int, int]:
        """``{event: interval}`` view of the pins (insertion = pin order)."""
        return {event: interval for interval, event in self.pins}

    def pinned_interval(self, event: int) -> int | None:
        """The interval ``event`` is pinned to, or ``None``."""
        for interval, pinned_event in self.pins:
            if pinned_event == event:
                return interval
        return None

    def is_forbidden(self, interval: int, event: int) -> bool:
        return (interval, event) in self.forbids

    def pinned_assignments(self) -> tuple[Assignment, ...]:
        """The pins as :class:`Assignment` values, in canonical pin order."""
        return tuple(
            Assignment(event=event, interval=interval)
            for interval, event in self.pins
        )

    # ------------------------------------------------------------------
    # validation against a concrete problem
    # ------------------------------------------------------------------
    def validate_for(self, instance: SESInstance) -> None:
        """Reject locks whose indices fall outside ``instance``.

        Joint feasibility of the pins (shared locations, theta) is *not*
        checked here — solvers surface that through the feasibility
        checker with the offending pin named, since it depends on the
        commit order and on what else the caller pinned.
        """
        for what, cells in (("pin", self.pins), ("forbid", sorted(self.forbids))):
            for interval, event in cells:
                if event >= instance.n_events:
                    raise LockError(
                        f"{what} ({interval}, {event}) references event "
                        f"{event}, but the instance has only "
                        f"{instance.n_events} events"
                    )
                if interval >= instance.n_intervals:
                    raise LockError(
                        f"{what} ({interval}, {event}) references interval "
                        f"{interval}, but the instance has only "
                        f"{instance.n_intervals} intervals"
                    )

    def explain(self, instance: SESInstance, k: int | None = None) -> LockReport:
        """Dry-run the pins against ``instance`` without solving.

        Rehearses the pins in canonical order through a fresh
        :class:`~repro.core.feasibility.FeasibilityChecker` — the same
        commit order every lock-aware solver uses — and classifies each
        one: ``ok``, ``out-of-range``, ``location-conflict`` or
        ``over-capacity``.  Forbids are only range-checked (they remove
        options, they cannot make a solve infeasible by themselves).
        Never raises and never mutates anything.
        """
        from repro.core.feasibility import FeasibilityChecker

        checker = FeasibilityChecker(instance)
        probes: list[PinProbe] = []
        for interval, event in self.pins:
            if event >= instance.n_events or interval >= instance.n_intervals:
                probes.append(
                    PinProbe(
                        interval,
                        event,
                        "out-of-range",
                        f"instance has {instance.n_events} events, "
                        f"{instance.n_intervals} intervals",
                    )
                )
                continue
            assignment = Assignment(event=event, interval=interval)
            if checker.is_valid(assignment):
                checker.apply(assignment)
                probes.append(PinProbe(interval, event, "ok"))
                continue
            location = instance.events[event].location
            held = any(
                instance.events[other].location == location
                for probed_interval, other in (
                    (p.interval, p.event) for p in probes if p.ok
                )
                if probed_interval == interval
            )
            if held:
                probes.append(
                    PinProbe(
                        interval,
                        event,
                        "location-conflict",
                        f"location {location} already used at t{interval} "
                        "by an earlier pin",
                    )
                )
            else:
                needed = instance.events[event].required_resources
                left = checker.remaining_resources(interval)
                probes.append(
                    PinProbe(
                        interval,
                        event,
                        "over-capacity",
                        f"needs {needed:g} resources but only {left:g} "
                        f"remain at t{interval}",
                    )
                )
        bad_forbids = tuple(
            (interval, event)
            for interval, event in sorted(self.forbids)
            if event >= instance.n_events or interval >= instance.n_intervals
        )
        return LockReport(
            probes=tuple(probes), forbids_out_of_range=bad_forbids, k=k
        )

    def check_schedule(self, schedule: Schedule | Mapping[int, int]) -> None:
        """Raise :class:`LockError` unless ``schedule`` honors every lock."""
        mapping: Mapping[int, int]
        if isinstance(schedule, Schedule):
            mapping = schedule.as_mapping()
        else:
            mapping = schedule
        for interval, event in self.pins:
            actual = mapping.get(event)
            if actual != interval:
                where = "unscheduled" if actual is None else f"at interval {actual}"
                raise LockError(
                    f"event {event} is pinned to interval {interval} "
                    f"but the schedule has it {where}"
                )
        for event, interval in mapping.items():
            if (interval, event) in self.forbids:
                raise LockError(
                    f"schedule places event {event} at interval {interval}, "
                    f"which is forbidden"
                )

    # ------------------------------------------------------------------
    # streaming support
    # ------------------------------------------------------------------
    def shifted_for_removal(self, event: int) -> "LockSet":
        """The lock set after ``event`` is cancelled and indices renumber.

        Locks referencing the removed event are dropped; every lock on a
        higher-numbered event shifts down by one — mirroring the event
        renumbering :meth:`IncrementalScheduler.cancel_event` performs.
        """

        def shift(cell: tuple[int, int]) -> tuple[int, int] | None:
            interval, cell_event = cell
            if cell_event == event:
                return None
            if cell_event > event:
                return (interval, cell_event - 1)
            return cell

        pins = tuple(c for c in map(shift, self.pins) if c is not None)
        forbids = frozenset(
            c for c in map(shift, sorted(self.forbids)) if c is not None
        )
        return LockSet(pins=pins, forbids=forbids)

    # ------------------------------------------------------------------
    # serialization (CLI, request logs)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, list[list[int]]]:
        return {
            "pins": [list(cell) for cell in self.pins],
            "forbids": [list(cell) for cell in sorted(self.forbids)],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "LockSet":
        def cells(key: str) -> Iterable[tuple[int, int]]:
            return tuple(_as_cell(cell, key.rstrip("s")) for cell in payload.get(key, ()))

        return cls(pins=tuple(cells("pins")), forbids=frozenset(cells("forbids")))

    @classmethod
    def coerce(cls, value: "LockSet | Mapping[str, Any] | None") -> "LockSet | None":
        """``None`` stays ``None``; dicts parse; empty lock sets collapse to ``None``.

        Collapsing empties is what makes ``locks=LockSet()`` take the exact
        unlocked code path, byte for byte.
        """
        if value is None:
            return None
        if isinstance(value, Mapping):
            value = cls.from_dict(value)
        if not isinstance(value, LockSet):
            raise LockError(
                f"locks must be a LockSet, a dict, or None, got {type(value).__name__}"
            )
        return None if value.is_empty else value

    def describe(self) -> str:
        pins = ", ".join(f"e{e}@t{t}" for t, e in self.pins) or "-"
        forbids = ", ".join(f"e{e}@t{t}" for t, e in sorted(self.forbids)) or "-"
        return f"pins[{pins}] forbids[{forbids}]"
