"""Named schedule versions and the diffs between them.

pretalx versions every released schedule; the organizer's question is
never "what is the schedule" but "what changed since v3?".
:class:`VersionStore` is the in-session answer: save a solve under a
name, diff any two names, read the utility delta and the exact
added/removed/moved assignments.

Versions are frozen value objects (the frozen-op lint rule covers this
module), so a saved snapshot can never drift after the session keeps
solving.  The store itself is a thin mutable registry; the serving tier
wraps it behind its session lock and stamps each version with the
:class:`~repro.serve.session.ServedResponse` generation it was built
from.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from repro.core.schedule import Schedule

__all__ = ["ScheduleVersion", "VersionDiff", "VersionStore", "diff_versions"]


@dataclass(frozen=True)
class ScheduleVersion:
    """One named, immutable snapshot of a solved schedule."""

    name: str
    #: Sorted ``(event, interval)`` pairs.
    assignments: tuple[tuple[int, int], ...]
    utility: float
    k: int
    solver: str
    #: Save order within the store (0, 1, 2, ...).
    sequence: int
    #: Serving-layer instance version the schedule was solved against
    #: (0 for plain sessions, which have a single immutable instance).
    stamp: int = 0

    def mapping(self) -> dict[int, int]:
        """``{event: interval}`` view of the snapshot."""
        return dict(self.assignments)

    def describe(self) -> str:
        return (
            f"{self.name}: {len(self.assignments)} assignments, "
            f"utility={self.utility:.4f}, solver={self.solver}, "
            f"k={self.k}, stamp={self.stamp}"
        )


@dataclass(frozen=True)
class VersionDiff:
    """What changed between two saved versions."""

    base: str
    target: str
    #: Events scheduled in ``target`` but not ``base``: ``(event, interval)``.
    added: tuple[tuple[int, int], ...]
    #: Events scheduled in ``base`` but not ``target``: ``(event, interval)``.
    removed: tuple[tuple[int, int], ...]
    #: Events present in both but relocated: ``(event, from, to)``.
    moved: tuple[tuple[int, int, int], ...]
    #: Assignments identical in both versions.
    unchanged: int
    utility_delta: float

    @property
    def is_empty(self) -> bool:
        return not (self.added or self.removed or self.moved)

    def describe(self) -> str:
        if self.is_empty:
            body = "no assignment changes"
        else:
            parts = []
            parts.extend(f"+e{e}@t{t}" for e, t in self.added)
            parts.extend(f"-e{e}@t{t}" for e, t in self.removed)
            parts.extend(f"e{e}: t{a}->t{b}" for e, a, b in self.moved)
            body = ", ".join(parts)
        return (
            f"{self.base} -> {self.target}: {body} "
            f"(utility {self.utility_delta:+.4f}, {self.unchanged} unchanged)"
        )


def diff_versions(base: ScheduleVersion, target: ScheduleVersion) -> VersionDiff:
    """The assignment/utility delta from ``base`` to ``target``."""
    before = base.mapping()
    after = target.mapping()
    added = tuple(
        sorted((e, t) for e, t in after.items() if e not in before)
    )
    removed = tuple(
        sorted((e, t) for e, t in before.items() if e not in after)
    )
    moved = tuple(
        sorted(
            (e, before[e], after[e])
            for e in before
            if e in after and before[e] != after[e]
        )
    )
    unchanged = sum(
        1 for e in before if e in after and before[e] == after[e]
    )
    return VersionDiff(
        base=base.name,
        target=target.name,
        added=added,
        removed=removed,
        moved=moved,
        unchanged=unchanged,
        utility_delta=target.utility - base.utility,
    )


class VersionStore:
    """An ordered registry of named :class:`ScheduleVersion` snapshots."""

    def __init__(self) -> None:
        self._versions: dict[str, ScheduleVersion] = {}

    # ------------------------------------------------------------------
    def save(
        self,
        name: str,
        schedule: Schedule | Mapping[int, int],
        utility: float,
        *,
        k: int,
        solver: str,
        stamp: int = 0,
        overwrite: bool = False,
    ) -> ScheduleVersion:
        """Snapshot ``schedule`` under ``name``; duplicate names need
        ``overwrite=True`` (an overwrite keeps the original sequence slot)."""
        if not name:
            raise ValueError("version name must be non-empty")
        if name in self._versions and not overwrite:
            raise ValueError(
                f"version {name!r} already exists; pass overwrite=True to replace"
            )
        mapping = (
            schedule.as_mapping()
            if isinstance(schedule, Schedule)
            else dict(schedule)
        )
        sequence = (
            self._versions[name].sequence
            if name in self._versions
            else len(self._versions)
        )
        version = ScheduleVersion(
            name=name,
            assignments=tuple(sorted(mapping.items())),
            utility=float(utility),
            k=k,
            solver=solver,
            sequence=sequence,
            stamp=stamp,
        )
        self._versions[name] = version
        return version

    # ------------------------------------------------------------------
    def get(self, name: str) -> ScheduleVersion:
        try:
            return self._versions[name]
        except KeyError:
            known = ", ".join(self.names()) or "none saved"
            raise KeyError(f"unknown version {name!r} (known: {known})") from None

    def names(self) -> tuple[str, ...]:
        """Saved names in save order."""
        ordered = sorted(self._versions.values(), key=lambda v: v.sequence)
        return tuple(version.name for version in ordered)

    def latest(self) -> ScheduleVersion | None:
        """The most recently first-saved version, or ``None`` when empty."""
        names = self.names()
        return self._versions[names[-1]] if names else None

    def diff(self, base: str, target: str | None = None) -> VersionDiff:
        """Diff ``base`` against ``target`` (default: the latest version)."""
        base_version = self.get(base)
        if target is None:
            latest = self.latest()
            assert latest is not None  # get(base) above proved non-empty
            target_version = latest
        else:
            target_version = self.get(target)
        return diff_versions(base_version, target_version)

    def changes_since(self, name: str) -> VersionDiff:
        """"What changed since ``name``?" — diff against the latest save."""
        return self.diff(name, None)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._versions)

    def __contains__(self, name: object) -> bool:
        return name in self._versions
