"""Organizer-in-the-loop scheduling: locks, gap reports, schedule versions.

The paper's SES problem is solved *for* a human organizer; this package
gives that organizer a seat at the table:

* :class:`~repro.interactive.locks.LockSet` — frozen pin/forbid
  constraints threaded through every registry solver and the incremental
  scheduler (``Scheduler.solve(..., locks=)``);
* :class:`~repro.interactive.gaps.GapReport` — for a draft schedule, the
  unscheduled high-value events and the intervals that could still host
  them, with marginal gains read straight off the warm
  :class:`~repro.core.scoreplane.ScorePlane`;
* :class:`~repro.interactive.versions.VersionStore` — named schedule
  snapshots with assignment/utility diffs ("what changed since v3?").

Everything here depends only on :mod:`repro.core`, so solver and API
modules import freely without cycles.
"""

from repro.interactive.gaps import EventGaps, GapCell, GapReport, build_gap_report
from repro.interactive.locks import LockSet
from repro.interactive.versions import (
    ScheduleVersion,
    VersionDiff,
    VersionStore,
    diff_versions,
)

__all__ = [
    "LockSet",
    "GapCell",
    "EventGaps",
    "GapReport",
    "build_gap_report",
    "ScheduleVersion",
    "VersionDiff",
    "VersionStore",
    "diff_versions",
]
