"""Gap reports: what a draft schedule left on the table, and why.

The hospitalist planning doctrine behind this module: a draft is only
useful to a human if every hole comes annotated with its feasible
fillers.  :func:`build_gap_report` takes a draft schedule and answers,
for every unscheduled event, *which intervals could still host it, at
what estimated marginal gain, and if none — why not* (budget exhausted,
cell forbidden by a lock, slot blocked by a location/theta conflict, or
simply dominated by what is already placed).

Every number is read straight off a warm
:class:`~repro.core.scoreplane.ScorePlane` — the report performs **zero**
extra Eq. 4 evaluations on a warm session (the fast-path counter check in
the test suite enforces it), so an organizer can ask for a fresh report
after every tweak without paying for a score sweep.

The gains are *empty-schedule estimates* (the plane's baseline), exactly
the quantities the greedy solvers rank by on their first move; they are
estimates, not exact deltas against the draft, and the report says so in
its field names.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

import numpy as np

from repro.core.feasibility import FeasibilityChecker, explain_infeasibility
from repro.core.instance import SESInstance
from repro.core.schedule import Assignment, Schedule
from repro.core.scoreplane import ScorePlane
from repro.interactive.locks import LockSet

__all__ = ["GapCell", "EventGaps", "GapReport", "build_gap_report"]

#: Cell statuses, from "actionable" to "explains itself away".
#:
#: * ``open``      — feasible, and the budget still has room.
#: * ``displace``  — feasible, budget full, but the estimated gain beats
#:                   the weakest placed assignment's estimate.
#: * ``dominated`` — feasible, budget full, gain does not beat the
#:                   weakest placed assignment.
#: * ``blocked``   — infeasible next to the draft (location or theta).
#: * ``forbidden`` — ruled out by an organizer lock.
CELL_STATUSES = ("open", "displace", "dominated", "blocked", "forbidden")

#: Statuses an organizer could act on directly.
FILLABLE_STATUSES = frozenset({"open", "displace"})

_GAIN_EPS = 1e-12


@dataclass(frozen=True)
class GapCell:
    """One (interval, event) option for an unscheduled event."""

    interval: int
    gain: float
    status: str
    detail: str = ""

    @property
    def fillable(self) -> bool:
        return self.status in FILLABLE_STATUSES


@dataclass(frozen=True)
class EventGaps:
    """All interval options for one unscheduled event, best first."""

    event: int
    #: Best gain over fillable cells; ``-inf`` when nothing is fillable.
    best_gain: float
    cells: tuple[GapCell, ...]

    def fillable_cells(self) -> tuple[GapCell, ...]:
        return tuple(cell for cell in self.cells if cell.fillable)

    def describe(self) -> str:
        fillable = self.fillable_cells()
        if fillable:
            options = ", ".join(
                f"t{cell.interval} (+{cell.gain:.4f}, {cell.status})"
                for cell in fillable[:3]
            )
            more = f" +{len(fillable) - 3} more" if len(fillable) > 3 else ""
            return f"e{self.event}: {options}{more}"
        reasons = sorted({cell.status for cell in self.cells})
        return f"e{self.event}: no fillable interval ({'/'.join(reasons)})"


@dataclass(frozen=True)
class GapReport:
    """The organizer-facing answer to "what did the draft leave out?"."""

    #: The draft, as sorted ``(event, interval)`` pairs.
    schedule: tuple[tuple[int, int], ...]
    k: int
    #: Whether the draft already uses the whole budget.
    at_budget: bool
    #: ``(event, interval, estimate)`` of the weakest placed assignment
    #: (the displacement target), or ``None`` on an empty draft.
    weakest: tuple[int, int, float] | None
    #: Unscheduled events, sorted by best fillable gain descending.
    gaps: tuple[EventGaps, ...]
    #: Plane cells filled/refreshed while building the report — 0 on a
    #: warm session (the zero-extra-evaluations contract).
    cells_spent: int
    #: Serving-layer version stamp (0 for plain sessions).
    version: int = 0

    def gap_for(self, event: int) -> EventGaps:
        for gap in self.gaps:
            if gap.event == event:
                return gap
        raise KeyError(f"event {event} is not among the report's gaps")

    def describe(self) -> str:
        placed = len(self.schedule)
        head = (
            f"gap report: {placed}/{self.k} placed"
            f"{' (budget full)' if self.at_budget else ''}, "
            f"{len(self.gaps)} unscheduled"
        )
        if self.weakest is not None and self.at_budget:
            event, interval, estimate = self.weakest
            head += f"; weakest placed e{event}@t{interval} (~{estimate:.4f})"
        lines = [head]
        lines.extend("  " + gap.describe() for gap in self.gaps)
        return "\n".join(lines)


def build_gap_report(
    instance: SESInstance,
    schedule: Schedule | Mapping[int, int],
    k: int,
    plane: ScorePlane,
    *,
    locks: LockSet | Mapping[str, object] | None = None,
    limit: int | None = None,
) -> GapReport:
    """Build a :class:`GapReport` for ``schedule`` against ``instance``.

    ``plane`` must be a baseline (empty-schedule) plane over ``instance``
    — exactly what :meth:`repro.api.ScheduleSession.plane_for` caches and
    what serving replicas carry.  On a warm plane the report costs zero
    engine evaluations; a cold plane pays its one-off fill and every
    subsequent report is free.

    ``limit`` keeps only the top-``limit`` gap events (by best fillable
    gain); ``None`` reports every unscheduled event.
    """
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    if limit is not None and limit < 0:
        raise ValueError(f"limit must be non-negative, got {limit}")
    lock_set = LockSet.coerce(locks)
    if lock_set is not None:
        lock_set.validate_for(instance)
    mapping = (
        schedule.as_mapping() if isinstance(schedule, Schedule) else dict(schedule)
    )

    checker = FeasibilityChecker(instance)
    for event in sorted(mapping):
        checker.apply(Assignment(event=event, interval=mapping[event]))

    spent_before = plane.cells_filled + plane.cells_refreshed
    matrix = plane.ensure()
    cells_spent = plane.cells_filled + plane.cells_refreshed - spent_before

    weakest: tuple[int, int, float] | None = None
    for event in sorted(mapping):
        estimate = float(matrix[mapping[event], event])
        if weakest is None or estimate < weakest[2]:
            weakest = (event, mapping[event], estimate)
    at_budget = len(mapping) >= k

    gaps: list[EventGaps] = []
    for event in range(instance.n_events):
        if event in mapping:
            continue
        cells: list[GapCell] = []
        for interval in range(instance.n_intervals):
            gain = float(matrix[interval, event])
            assignment = Assignment(event=event, interval=interval)
            if lock_set is not None and lock_set.is_forbidden(interval, event):
                status, detail = "forbidden", "ruled out by an organizer lock"
            elif not checker.is_feasible(assignment):
                status = "blocked"
                detail = explain_infeasibility(instance, checker, assignment)
            elif not at_budget:
                status, detail = "open", "budget has room"
            elif weakest is not None and gain > weakest[2] + _GAIN_EPS:
                status = "displace"
                detail = (
                    f"beats weakest placed e{weakest[0]}@t{weakest[1]} "
                    f"(~{weakest[2]:.4f})"
                )
            else:
                status, detail = "dominated", "budget full; gain does not beat it"
            cells.append(
                GapCell(interval=interval, gain=gain, status=status, detail=detail)
            )
        cells.sort(key=lambda cell: (-cell.gain, cell.interval))
        best_gain = max(
            (cell.gain for cell in cells if cell.fillable), default=-np.inf
        )
        gaps.append(
            EventGaps(event=event, best_gain=float(best_gain), cells=tuple(cells))
        )

    gaps.sort(key=lambda gap: (-gap.best_gain, gap.event))
    if limit is not None:
        gaps = gaps[:limit]
    return GapReport(
        schedule=tuple(sorted((e, t) for e, t in mapping.items())),
        k=k,
        at_budget=at_budget,
        weakest=weakest,
        gaps=tuple(gaps),
        cells_spent=cells_spent,
    )
