"""The Theorem-1 reduction: MKPI instances to restricted SES instances.

The paper's proof sketch maps (1) bins to time intervals, (2) bin capacity
to the organizer's resources ``theta``, (3) items to candidate events,
(4) item weight to required resources ``xi``, (5) item profit to interest
("likeness") and (6) total profit to expected attendance, inside a
restricted SES family:

* as many users as candidate events;
* exactly one competing event per interval;
* every user has the same interest ``K`` in every competing event;
* each user likes exactly one event and vice versa (a perfect matching);
* the interest value is ``mu = p * K / (1 - p)`` where ``p`` is the item's
  (normalized) profit;
* one common social-activity probability ``sigma``;
* no location constraints (every event gets a distinct location).

Under this construction the Luce denominator for user ``i`` at the interval
hosting their matched event ``e_i`` is ``K + mu_i`` (no other event at the
interval interests them), so::

    rho = sigma * mu_i / (K + mu_i)
        = sigma * (p K / (1-p)) / (K + p K / (1-p))
        = sigma * p

i.e. each scheduled event contributes ``sigma * p_i`` to Omega — profits
transfer to utility **linearly and without cross-event interaction**, and
the per-interval resource constraint is exactly the per-bin capacity.
Hence optimal packings and optimal schedules coincide:
``Omega*(k) = sigma * scale * (best profit among packings of exactly k items)``.

:func:`reduce_mkpi_to_ses` makes this construction executable;
:class:`ReducedSES` keeps the bookkeeping needed to translate utilities
back into MKPI profits.  The test suite closes the loop by checking
``solve_mkpi_exact`` against :class:`~repro.algorithms.ExhaustiveScheduler`
on the reduced instance for every feasible ``k``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.activity import ActivityModel
from repro.core.entities import (
    CandidateEvent,
    CompetingEvent,
    Organizer,
    TimeInterval,
    User,
)
from repro.core.instance import SESInstance
from repro.core.interest import InterestMatrix
from repro.hardness.mkpi import MKPIInstance

__all__ = ["ReducedSES", "reduce_mkpi_to_ses"]


@dataclass(frozen=True)
class ReducedSES:
    """An SES instance produced from MKPI, with profit-recovery bookkeeping.

    ``profit_scale`` is the factor by which original profits were divided
    to land in (0, 1); ``utility_to_profit`` inverts the whole mapping.
    """

    ses: SESInstance
    mkpi: MKPIInstance
    sigma: float
    competing_interest: float
    profit_scale: float

    def utility_to_profit(self, utility: float) -> float:
        """Translate an SES utility back to the MKPI profit it encodes."""
        return utility / self.sigma * self.profit_scale

    def profit_to_utility(self, profit: float) -> float:
        """Translate an MKPI profit to the SES utility it would produce."""
        return profit / self.profit_scale * self.sigma


def reduce_mkpi_to_ses(
    mkpi: MKPIInstance,
    sigma: float = 1.0,
    headroom: float = 2.0,
) -> ReducedSES:
    """Build the Theorem-1 restricted SES instance for ``mkpi``.

    Parameters
    ----------
    mkpi:
        The source instance.
    sigma:
        The common social-activity probability (must lie in (0, 1]).
    headroom:
        Profits are normalized as ``p_i / (headroom * max_profit)`` so they
        sit strictly inside (0, 1); larger headroom shrinks interests.
        Must exceed 1.

    The competing interest ``K`` is chosen as ``min_i (1 - p_i) / p_i``
    over the *normalized* profits, the largest value for which every
    ``mu_i = p_i K / (1 - p_i)`` stays within the [0, 1] interest range.
    """
    if not 0.0 < sigma <= 1.0:
        raise ValueError(f"sigma must lie in (0, 1], got {sigma}")
    if headroom <= 1.0:
        raise ValueError(f"headroom must exceed 1, got {headroom}")

    n = mkpi.n_items
    profit_scale = headroom * max(mkpi.profits)
    normalized = np.array(mkpi.profits) / profit_scale  # in (0, 1)

    competing_interest = float(np.min((1.0 - normalized) / normalized))
    matched_interest = normalized * competing_interest / (1.0 - normalized)

    users = [User(index=i, name=f"mkpi-user-{i}") for i in range(n)]
    intervals = [
        TimeInterval(index=t, label=f"bin-{t}") for t in range(mkpi.n_bins)
    ]
    # distinct locations disable the location constraint, per the proof sketch
    events = [
        CandidateEvent(
            index=i,
            location=i,
            required_resources=mkpi.weights[i],
            name=f"item-{i}",
        )
        for i in range(n)
    ]
    competing = [
        CompetingEvent(index=t, interval=t, name=f"rival-at-bin-{t}")
        for t in range(mkpi.n_bins)
    ]

    candidate_interest = np.zeros((n, n))
    np.fill_diagonal(candidate_interest, matched_interest)
    competing_matrix = np.full((n, mkpi.n_bins), competing_interest)

    ses = SESInstance(
        users=users,
        intervals=intervals,
        events=events,
        competing=competing,
        interest=InterestMatrix.from_arrays(candidate_interest, competing_matrix),
        activity=ActivityModel.constant(n, mkpi.n_bins, sigma),
        organizer=Organizer(resources=mkpi.capacity, name="mkpi-organizer"),
    )
    return ReducedSES(
        ses=ses,
        mkpi=mkpi,
        sigma=sigma,
        competing_interest=competing_interest,
        profit_scale=profit_scale,
    )
