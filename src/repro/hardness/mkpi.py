"""Multiple Knapsack with Identical capacities (MKPI).

Theorem 1 of the paper reduces MKPI — strongly NP-hard per Martello & Toth
— to SES.  To make that reduction *executable* (and testable) we need MKPI
itself: instances, an exact branch-and-bound solver for tiny sizes, and a
density-greedy heuristic for sanity comparisons.

An MKPI instance has ``n`` items, item ``i`` carrying weight ``w_i > 0``
and profit ``p_i > 0``, and ``m`` bins of one common capacity ``c``.  A
packing places each item in at most one bin subject to per-bin capacity;
its value is the summed profit of packed items.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.errors import SESError

__all__ = [
    "MKPIInstance",
    "MKPIPacking",
    "solve_mkpi_exact",
    "solve_mkpi_greedy",
]


@dataclass(frozen=True)
class MKPIInstance:
    """An MKPI instance: ``n`` weighted/valued items, ``m`` equal bins."""

    weights: tuple[float, ...]
    profits: tuple[float, ...]
    n_bins: int
    capacity: float

    def __post_init__(self) -> None:
        if len(self.weights) != len(self.profits):
            raise ValueError(
                f"weights ({len(self.weights)}) and profits ({len(self.profits)}) "
                f"must have equal length"
            )
        if any(w <= 0 for w in self.weights):
            raise ValueError("all weights must be positive")
        if any(p <= 0 for p in self.profits):
            raise ValueError("all profits must be positive")
        if self.n_bins <= 0:
            raise ValueError(f"n_bins must be positive, got {self.n_bins}")
        if self.capacity <= 0:
            raise ValueError(f"capacity must be positive, got {self.capacity}")
        object.__setattr__(self, "weights", tuple(float(w) for w in self.weights))
        object.__setattr__(self, "profits", tuple(float(p) for p in self.profits))

    @property
    def n_items(self) -> int:
        return len(self.weights)

    @classmethod
    def random(
        cls,
        n_items: int,
        n_bins: int,
        capacity: float,
        seed: int | np.random.Generator | None = None,
        max_weight: float | None = None,
    ) -> "MKPIInstance":
        """Random instance with U(1, max_weight) weights, U(1, 10) profits."""
        rng = np.random.default_rng(seed) if not isinstance(
            seed, np.random.Generator
        ) else seed
        max_weight = max_weight if max_weight is not None else capacity
        weights = rng.uniform(1.0, max(1.0 + 1e-9, max_weight), size=n_items)
        profits = rng.uniform(1.0, 10.0, size=n_items)
        return cls(
            weights=tuple(weights),
            profits=tuple(profits),
            n_bins=n_bins,
            capacity=capacity,
        )


@dataclass(frozen=True)
class MKPIPacking:
    """A packing: ``bin_of[i]`` is the bin of item ``i`` or ``None``."""

    instance: MKPIInstance
    bin_of: tuple[int | None, ...]

    def __post_init__(self) -> None:
        if len(self.bin_of) != self.instance.n_items:
            raise ValueError(
                f"bin_of must cover all {self.instance.n_items} items, "
                f"got {len(self.bin_of)}"
            )
        loads = [0.0] * self.instance.n_bins
        for item, bin_index in enumerate(self.bin_of):
            if bin_index is None:
                continue
            if not 0 <= bin_index < self.instance.n_bins:
                raise ValueError(f"item {item} placed in unknown bin {bin_index}")
            loads[bin_index] += self.instance.weights[item]
        for bin_index, load in enumerate(loads):
            if load > self.instance.capacity + 1e-9:
                raise ValueError(
                    f"bin {bin_index} overflows: load {load} > capacity "
                    f"{self.instance.capacity}"
                )

    @property
    def total_profit(self) -> float:
        return sum(
            self.instance.profits[item]
            for item, bin_index in enumerate(self.bin_of)
            if bin_index is not None
        )

    @property
    def packed_items(self) -> tuple[int, ...]:
        return tuple(
            item for item, bin_index in enumerate(self.bin_of) if bin_index is not None
        )


class _SearchBudget(SESError):
    """Internal: exact MKPI search exceeded its node budget."""


def solve_mkpi_exact(
    instance: MKPIInstance, max_nodes: int = 5_000_000
) -> MKPIPacking:
    """Optimal MKPI packing by depth-first branch and bound.

    Items are considered in decreasing density (profit/weight) order; the
    bound at each node is the incumbent profit versus current profit plus
    all remaining profits.  Bins are interchangeable (identical capacity),
    so item placement only tries bins up to the first empty one —
    a standard symmetry break.
    """
    order = sorted(
        range(instance.n_items),
        key=lambda i: instance.profits[i] / instance.weights[i],
        reverse=True,
    )
    suffix_profit = [0.0] * (instance.n_items + 1)
    for position in range(instance.n_items - 1, -1, -1):
        suffix_profit[position] = (
            suffix_profit[position + 1] + instance.profits[order[position]]
        )

    loads = [0.0] * instance.n_bins
    assignment: list[int | None] = [None] * instance.n_items
    best_profit = -1.0
    best_assignment: list[int | None] = list(assignment)
    nodes = 0

    def recurse(position: int, profit: float) -> None:
        nonlocal best_profit, best_assignment, nodes
        nodes += 1
        if nodes > max_nodes:
            raise _SearchBudget(
                f"exact MKPI search exceeded {max_nodes} nodes; "
                f"reduce the instance size"
            )
        if profit > best_profit:
            best_profit = profit
            best_assignment = list(assignment)
        if position == instance.n_items:
            return
        if profit + suffix_profit[position] <= best_profit:
            return
        item = order[position]

        seen_empty = False
        for bin_index in range(instance.n_bins):
            if loads[bin_index] == 0.0:
                if seen_empty:
                    break  # identical empty bins: trying one suffices
                seen_empty = True
            if loads[bin_index] + instance.weights[item] > instance.capacity + 1e-9:
                continue
            loads[bin_index] += instance.weights[item]
            assignment[item] = bin_index
            recurse(position + 1, profit + instance.profits[item])
            assignment[item] = None
            loads[bin_index] -= instance.weights[item]

        recurse(position + 1, profit)  # leave the item out

    recurse(0, 0.0)
    return MKPIPacking(instance=instance, bin_of=tuple(best_assignment))


def solve_mkpi_greedy(instance: MKPIInstance) -> MKPIPacking:
    """Density-greedy first-fit heuristic (baseline, not optimal)."""
    order = sorted(
        range(instance.n_items),
        key=lambda i: instance.profits[i] / instance.weights[i],
        reverse=True,
    )
    loads = [0.0] * instance.n_bins
    assignment: list[int | None] = [None] * instance.n_items
    for item in order:
        for bin_index in range(instance.n_bins):
            if loads[bin_index] + instance.weights[item] <= instance.capacity + 1e-9:
                loads[bin_index] += instance.weights[item]
                assignment[item] = bin_index
                break
    return MKPIPacking(instance=instance, bin_of=tuple(assignment))
