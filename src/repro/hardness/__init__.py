"""Executable form of the paper's Theorem 1 (strong NP-hardness of SES).

:mod:`repro.hardness.mkpi` implements the source problem — Multiple
Knapsack with Identical capacities — with exact and greedy solvers;
:mod:`repro.hardness.reduction` builds the paper's restricted SES instance
from any MKPI instance, preserving optima.
"""

from repro.hardness.mkpi import (
    MKPIInstance,
    MKPIPacking,
    solve_mkpi_exact,
    solve_mkpi_greedy,
)
from repro.hardness.milp import MILPSolveError, solve_mkpi_milp
from repro.hardness.reduction import ReducedSES, reduce_mkpi_to_ses

__all__ = [
    "MKPIInstance",
    "MKPIPacking",
    "MILPSolveError",
    "ReducedSES",
    "reduce_mkpi_to_ses",
    "solve_mkpi_exact",
    "solve_mkpi_milp",
    "solve_mkpi_greedy",
]
