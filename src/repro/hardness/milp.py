"""MILP formulation of MKPI via ``scipy.optimize.milp`` (HiGHS).

A third, independent MKPI solver — alongside the branch-and-bound and the
density greedy — used to cross-validate the Theorem-1 machinery.  The
formulation is the textbook one:

* binary ``x[i, b]`` — item ``i`` packed into bin ``b``;
* maximize ``sum_i sum_b p_i x[i, b]``;
* each item in at most one bin: ``sum_b x[i, b] <= 1``;
* each bin within capacity: ``sum_i w_i x[i, b] <= c``.

scipy minimizes, so profits enter negated.  The solver is exact (HiGHS
proves optimality), making it a genuinely independent oracle for the
branch-and-bound implementation in :mod:`repro.hardness.mkpi`.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.core.errors import SESError
from repro.hardness.mkpi import MKPIInstance, MKPIPacking

__all__ = ["solve_mkpi_milp", "MILPSolveError"]


class MILPSolveError(SESError):
    """HiGHS failed to solve the MKPI model to optimality."""


def solve_mkpi_milp(instance: MKPIInstance) -> MKPIPacking:
    """Solve MKPI exactly through the HiGHS mixed-integer solver.

    Variables are laid out item-major: ``x[i * n_bins + b]``.
    """
    n_items, n_bins = instance.n_items, instance.n_bins
    n_vars = n_items * n_bins

    # objective: maximize profit -> minimize negated profit
    objective = np.repeat(-np.asarray(instance.profits), n_bins)

    constraints = []

    # each item in at most one bin
    item_rows = np.zeros((n_items, n_vars))
    for item in range(n_items):
        item_rows[item, item * n_bins : (item + 1) * n_bins] = 1.0
    constraints.append(LinearConstraint(item_rows, -np.inf, 1.0))

    # each bin within capacity
    bin_rows = np.zeros((n_bins, n_vars))
    for item in range(n_items):
        for bin_index in range(n_bins):
            bin_rows[bin_index, item * n_bins + bin_index] = instance.weights[item]
    constraints.append(
        LinearConstraint(bin_rows, -np.inf, instance.capacity)
    )

    result = milp(
        c=objective,
        constraints=constraints,
        integrality=np.ones(n_vars),
        bounds=Bounds(0.0, 1.0),
    )
    if not result.success:
        raise MILPSolveError(
            f"HiGHS did not reach optimality: {result.message}"
        )

    values = np.round(result.x).astype(int)
    bin_of: list[int | None] = [None] * n_items
    for item in range(n_items):
        row = values[item * n_bins : (item + 1) * n_bins]
        packed = np.flatnonzero(row)
        if packed.size:
            bin_of[item] = int(packed[0])
    return MKPIPacking(instance=instance, bin_of=tuple(bin_of))
